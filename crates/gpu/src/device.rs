//! The simulated GPU device: memory capacity, copy engines, streams.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Errors from device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Allocation would exceed device global memory (the K20X 6 GB wall the
    /// level database exists to avoid).
    OutOfMemory {
        requested: usize,
        used: usize,
        capacity: usize,
    },
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                used,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {used}/{capacity} B in use"
            ),
        }
    }
}

impl std::error::Error for GpuError {}

/// Counters for one copy engine (the K20X has two: one per direction, which
/// is what lets transfers for some patches overlap kernels of others).
#[derive(Debug, Default)]
pub struct CopyEngineStats {
    pub transfers: AtomicU64,
    pub bytes: AtomicU64,
}

/// A CUDA-stream-like handle. Operations issued on different streams may
/// interleave; the Uintah infrastructure assigns each GPU patch task its own
/// stream (round-robin here via [`GpuDevice::next_stream`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Stream(pub u32);

/// One coherent snapshot of a device's counters, taken with
/// [`GpuDevice::counters`] — the one-stop replacement for the former
/// per-counter getters. Harness binaries print these tables directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Kernel launches.
    pub kernels: u64,
    /// Host→device bytes through copy engine 0.
    pub h2d_bytes: u64,
    /// Host→device transfer count.
    pub h2d_transfers: u64,
    /// Device→host bytes through copy engine 1.
    pub d2h_bytes: u64,
    /// Device→host transfer count.
    pub d2h_transfers: u64,
    /// Allocations rejected at capacity.
    pub alloc_failures: u64,
    /// Bytes currently allocated.
    pub used: u64,
    /// High-water mark of device memory.
    pub peak: u64,
}

#[derive(Debug)]
struct DeviceInner {
    name: &'static str,
    capacity: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
    h2d: CopyEngineStats,
    d2h: CopyEngineStats,
    kernels: AtomicU64,
    num_streams: u32,
    next_stream: AtomicU64,
    alloc_failures: AtomicU64,
}

/// A simulated GPU. Cheap to clone (shared accounting).
#[derive(Clone, Debug)]
pub struct GpuDevice {
    inner: Arc<DeviceInner>,
}

impl GpuDevice {
    /// A Titan-node K20X: 6 GB GDDR5, two copy engines, 16 streams.
    pub fn k20x() -> Self {
        Self::with_capacity("Tesla K20X", 6 * 1024 * 1024 * 1024)
    }

    pub fn with_capacity(name: &'static str, capacity: usize) -> Self {
        Self {
            inner: Arc::new(DeviceInner {
                name,
                capacity,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                h2d: CopyEngineStats::default(),
                d2h: CopyEngineStats::default(),
                kernels: AtomicU64::new(0),
                num_streams: 16,
                next_stream: AtomicU64::new(0),
                alloc_failures: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    #[inline]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Bytes currently allocated on the device.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark of device memory.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` of device memory (atomic; fails cleanly at capacity).
    pub(crate) fn try_reserve(&self, bytes: usize) -> Result<(), GpuError> {
        let mut used = self.inner.used.load(Ordering::Relaxed);
        loop {
            let new = used + bytes;
            if new > self.inner.capacity {
                self.inner.alloc_failures.fetch_add(1, Ordering::Relaxed);
                return Err(GpuError::OutOfMemory {
                    requested: bytes,
                    used,
                    capacity: self.inner.capacity,
                });
            }
            match self.inner.used.compare_exchange_weak(
                used,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(u) => used = u,
            }
        }
    }

    pub(crate) fn release(&self, bytes: usize) {
        self.inner.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Meter a host→device transfer on copy engine 0.
    pub fn record_h2d(&self, bytes: usize) {
        self.inner.h2d.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.h2d.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Meter a device→host transfer on copy engine 1.
    pub fn record_d2h(&self, bytes: usize) {
        self.inner.d2h.transfers.fetch_add(1, Ordering::Relaxed);
        self.inner.d2h.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record a kernel launch and return its stream. The actual work runs on
    /// the calling host thread (concurrent kernels = concurrent patch tasks).
    pub fn launch_kernel(&self) -> Stream {
        self.inner.kernels.fetch_add(1, Ordering::Relaxed);
        self.next_stream()
    }

    /// Round-robin stream assignment (one stream per in-flight patch task).
    pub fn next_stream(&self) -> Stream {
        let s = self.inner.next_stream.fetch_add(1, Ordering::Relaxed);
        Stream((s % self.inner.num_streams as u64) as u32)
    }

    /// Number of hardware stream queues.
    #[inline]
    pub fn num_streams(&self) -> u32 {
        self.inner.num_streams
    }

    /// Snapshot every counter at once.
    pub fn counters(&self) -> DeviceCounters {
        DeviceCounters {
            kernels: self.inner.kernels.load(Ordering::Relaxed),
            h2d_bytes: self.inner.h2d.bytes.load(Ordering::Relaxed),
            h2d_transfers: self.inner.h2d.transfers.load(Ordering::Relaxed),
            d2h_bytes: self.inner.d2h.bytes.load(Ordering::Relaxed),
            d2h_transfers: self.inner.d2h.transfers.load(Ordering::Relaxed),
            alloc_failures: self.inner.alloc_failures.load(Ordering::Relaxed),
            used: self.inner.used.load(Ordering::Relaxed) as u64,
            peak: self.inner.peak.load(Ordering::Relaxed) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20x_has_6gb() {
        let d = GpuDevice::k20x();
        assert_eq!(d.capacity(), 6 * 1024 * 1024 * 1024);
        assert_eq!(d.used(), 0);
    }

    #[test]
    fn reserve_release_accounting() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(600).unwrap();
        assert_eq!(d.used(), 600);
        let err = d.try_reserve(500).unwrap_err();
        assert_eq!(
            err,
            GpuError::OutOfMemory {
                requested: 500,
                used: 600,
                capacity: 1000
            }
        );
        d.release(600);
        assert_eq!(d.used(), 0);
        assert_eq!(d.peak(), 600);
        assert_eq!(d.counters().alloc_failures, 1);
    }

    #[test]
    fn copy_engines_are_per_direction() {
        let d = GpuDevice::k20x();
        d.record_h2d(100);
        d.record_h2d(50);
        d.record_d2h(7);
        let c = d.counters();
        assert_eq!(c.h2d_transfers, 2);
        assert_eq!(c.h2d_bytes, 150);
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 7);
    }

    #[test]
    fn counter_snapshot_is_complete() {
        let d = GpuDevice::with_capacity("test", 1000);
        d.try_reserve(300).unwrap();
        d.record_h2d(300);
        d.launch_kernel();
        let c = d.counters();
        assert_eq!(
            c,
            DeviceCounters {
                kernels: 1,
                h2d_bytes: 300,
                h2d_transfers: 1,
                d2h_bytes: 0,
                d2h_transfers: 0,
                alloc_failures: 0,
                used: 300,
                peak: 300,
            }
        );
    }

    #[test]
    fn streams_round_robin() {
        let d = GpuDevice::k20x();
        let s0 = d.next_stream();
        let s1 = d.next_stream();
        assert_ne!(s0, s1);
        // 16 streams wrap around.
        for _ in 0..14 {
            d.next_stream();
        }
        assert_eq!(d.next_stream(), s0);
    }

    #[test]
    fn concurrent_reserve_never_exceeds_capacity() {
        let d = GpuDevice::with_capacity("test", 10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        if d.try_reserve(100).is_ok() {
                            assert!(d.used() <= d.capacity());
                            d.release(100);
                        }
                    }
                });
            }
        });
        assert_eq!(d.used(), 0);
        assert!(d.peak() <= d.capacity());
    }
}
