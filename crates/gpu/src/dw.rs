//! The GPU DataWarehouse with its mesh-level database (contribution ii).
//!
//! "Our solution … has been achieved by a significant extension of the
//! Uintah GPU DataWarehouse system to support a level database that stores a
//! single copy of shared global radiative properties (per-mesh level …).
//! Our solution has effectively minimized PCIe transfers and ultimately
//! allowed multiple mesh patches, each with GPU tasks, to run concurrently
//! on the GPU while sharing data from the coarse radiation mesh."
//!
//! With the level DB **enabled**, the first task to need a per-level
//! variable pays one H2D transfer and one device allocation; all concurrent
//! patch tasks share that copy. **Disabled** (the E4 ablation = the old
//! behaviour), every requesting task gets a private copy, multiplying both
//! PCIe traffic and device memory by the number of resident patch tasks —
//! which is exactly what blew the 6 GB K20X budget in the paper.
//!
//! The warehouse is **fleet-aware**: it wraps a [`DeviceFleet`] and keeps
//! one patch database and one level database *per device* — the paper's
//! level DB is "one shared replica per GPU", so a 4-device rank holds at
//! most 4 replicas of each coarse field, never one per patch task. Patch
//! variables route to their home device through [`GpuDataWarehouse::
//! device_for_patch`] (affinity override map, falling back to the sticky
//! hash), and level staging targets an explicit device via the `_on`
//! variants. All single-device entry points are preserved: a fleet of one
//! behaves exactly as before.
//!
//! **Oversubscription.** Every reservation is a real [`DeviceBlock`] carved
//! from the device's free-list sub-allocator, and when an allocation fails
//! the warehouse *evicts* under an LRU policy instead of surfacing OOM:
//! the least-recently-used database entry with no outstanding task handle
//! is dropped. Level replicas are regenerable from host data and are simply
//! released (the next `ensure_level*` re-uploads); patch variables are
//! *spilled* to a host-side map over the D2H engine and transparently
//! re-uploaded on the next [`GpuDataWarehouse::get_patch`]. Entries whose
//! `Arc<DeviceVar>` is held by a running kernel are never victims, so a
//! task's staged replicas stay resident for exactly the kernel's lifetime —
//! which is why eviction is invisible to divQ (bit-identical to a
//! non-evicting run) and only visible in the eviction/spill/re-upload
//! counters and in wall time.
//!
//! **Upload pipeline.** The H2D direction is asynchronous too: posted
//! uploads ([`GpuDataWarehouse::put_patch_async`] and the prefetch entry
//! points) snapshot host bytes into a recycled pinned-staging pool at post
//! time, carve their device block immediately, and run the staged burst on
//! the home device's H2D engine thread — coalesced per device into one
//! metered transfer per batch. The first consumer *materializes* the
//! finished upload into the database instead of uploading inline; regrid
//! invalidation, wholesale clears, superseding writes and allocator
//! pressure *cancel* unconsumed uploads rather than installing stale
//! bytes. `async_h2d == false` keeps a bit-identical synchronous fallback
//! with the same engine bookkeeping (the inline-H2D pair), zero overlap by
//! construction.

use crate::device::{DeviceBlock, DeviceCounters, GpuDevice, GpuError, Stream};
use crate::fleet::{DeviceFleet, DeviceId};
use parking_lot::{Mutex as StateMutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use uintah_grid::{CcVariable, LevelIndex, PatchId, VarLabel};
use uintah_mem::{AllocTracker, BufferRecycler};

/// Device-resident variable payload (same representation as host fields;
/// "device memory" is the accounting in [`GpuDevice`]).
pub type DeviceData = uintah_grid::FieldData;

/// A device-resident variable: owns a [`DeviceBlock`] extent, so its device
/// memory is freed exactly once — when the last shared handle drops.
#[derive(Debug)]
pub struct DeviceVar {
    data: DeviceData,
    block: DeviceBlock,
}

impl DeviceVar {
    #[inline]
    pub fn data(&self) -> &DeviceData {
        &self.data
    }

    #[inline]
    pub fn size_bytes(&self) -> usize {
        self.block.bytes()
    }
}

type PatchKey = (VarLabel, PatchId);
type LevelKey = (VarLabel, LevelIndex);

/// Shared completion state between a [`PendingD2H`] handle and the copy
/// engine draining it: the materialized host data plus the measured drain
/// duration, posted under the mutex and announced on the condvar.
#[derive(Default)]
struct PendingShared {
    slot: Mutex<Option<(DeviceData, Duration)>>,
    done: Condvar,
}

/// Completion handle for an asynchronous device→host transfer posted by
/// [`GpuDataWarehouse::take_patch_to_host_async`].
///
/// The drain (the PCIe memcpy — here the real `clone` of the device bytes)
/// proceeds on the D2H copy-engine thread while the scheduler keeps
/// executing ready tasks; the host data materializes on first use via
/// [`Self::wait`] / [`Self::wait_timed`]. Device memory for the variable is
/// released when the drain completes, not when the handle is created —
/// exactly the lifetime a `cudaMemcpyAsync` imposes.
pub struct PendingD2H {
    shared: Arc<PendingShared>,
    bytes: usize,
    stream: Stream,
    /// True when the warehouse is in synchronous-fallback mode and the
    /// drain completed inline at post time: the caller is charged the full
    /// drain as blocked time (overlap is zero by construction).
    inline: bool,
}

impl std::fmt::Debug for PendingD2H {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingD2H")
            .field("bytes", &self.bytes)
            .field("stream", &self.stream)
            .field("inline", &self.inline)
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl PendingD2H {
    /// Transfer size in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The stream the transfer was posted on.
    #[inline]
    pub fn stream(&self) -> Stream {
        self.stream
    }

    /// Whether the drain has already completed (non-blocking).
    pub fn is_complete(&self) -> bool {
        self.shared.slot.lock().unwrap().is_some()
    }

    /// Block until the drain completes and take the host data.
    pub fn wait(self) -> DeviceData {
        self.wait_timed().0
    }

    /// Block until the drain completes; returns `(data, drain, blocked)`
    /// where `drain` is the wall time the copy engine spent moving the
    /// bytes and `blocked` is how long *this call* stalled the consumer.
    /// A transfer that finished before first use reports `blocked ≈ 0`, so
    /// `drain - blocked` is the wall time hidden behind compute — the
    /// overlap the two-copy-engine pipeline exists to win.
    pub fn wait_timed(self) -> (DeviceData, Duration, Duration) {
        let t0 = Instant::now();
        let mut slot = self.shared.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.shared.done.wait(slot).unwrap();
        }
        let (data, drain) = slot.take().expect("slot filled above");
        let blocked = if self.inline { drain } else { t0.elapsed() };
        (data, drain, blocked)
    }

    /// A handle whose "drain" already happened — used when a take is served
    /// from the host spill map (the bytes left the device at eviction time,
    /// so there is nothing in flight).
    fn complete(data: DeviceData, stream: Stream) -> Self {
        let shared = Arc::new(PendingShared::default());
        *shared.slot.lock().unwrap() = Some((data, Duration::ZERO));
        PendingD2H {
            shared,
            bytes: 0,
            stream,
            inline: true,
        }
    }
}

/// Shared completion state between a [`PendingH2D`] handle (or a pending
/// slot in a device store) and the H2D engine filling it: the finished
/// device-resident variable plus the measured burst duration and whether
/// the upload completed inline (synchronous fallback).
#[derive(Default)]
struct PendingUploadShared {
    slot: Mutex<Option<(Arc<DeviceVar>, Duration, bool)>>,
    done: Condvar,
}

impl PendingUploadShared {
    fn fill(&self, var: Arc<DeviceVar>, upload: Duration, inline: bool) {
        *self.slot.lock().unwrap() = Some((var, upload, inline));
        self.done.notify_all();
    }

    fn is_complete(&self) -> bool {
        self.slot.lock().unwrap().is_some()
    }

    /// Block until the burst lands. Clones the finished handle out instead
    /// of taking it so racing consumers can all observe it — the
    /// pending-map entry, not this slot, elects the single installer.
    fn wait(&self) -> (Arc<DeviceVar>, Duration, bool) {
        let mut slot = self.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.done.wait(slot).unwrap();
        }
        let (var, upload, inline) = slot.as_ref().expect("slot filled above");
        (Arc::clone(var), *upload, *inline)
    }
}

/// Completion handle for an asynchronous host→device upload posted by
/// [`GpuDataWarehouse::put_patch_async`] — the upload twin of
/// [`PendingD2H`].
///
/// The burst (the PCIe memcpy — here the real `clone` of the staged bytes)
/// proceeds on the H2D copy-engine thread while the poster keeps running;
/// the device-resident variable materializes on first use via
/// [`Self::wait`] / [`Self::wait_timed`]. Consumers that go through
/// [`GpuDataWarehouse::get_patch`] never need to touch the handle: the
/// warehouse installs the finished upload on their behalf.
pub struct PendingH2D {
    shared: Arc<PendingUploadShared>,
    bytes: usize,
    stream: Stream,
    /// True when the warehouse is in synchronous-fallback mode and the
    /// burst completed inline at post time: the poster was charged the full
    /// upload as stall (overlap is zero by construction).
    inline: bool,
}

impl std::fmt::Debug for PendingH2D {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingH2D")
            .field("bytes", &self.bytes)
            .field("stream", &self.stream)
            .field("inline", &self.inline)
            .field("complete", &self.is_complete())
            .finish()
    }
}

impl PendingH2D {
    /// Transfer size in bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The stream the transfer was posted on.
    #[inline]
    pub fn stream(&self) -> Stream {
        self.stream
    }

    /// Whether the burst has already landed (non-blocking).
    pub fn is_complete(&self) -> bool {
        self.shared.is_complete()
    }

    /// Block until the burst lands and take the device variable.
    pub fn wait(self) -> Arc<DeviceVar> {
        self.wait_timed().0
    }

    /// Block until the burst lands; returns `(var, upload, blocked)` where
    /// `upload` is the wall time the copy engine spent moving the bytes
    /// and `blocked` is how long *this call* stalled the consumer. An
    /// upload that finished before first use reports `blocked ≈ 0`, so
    /// `upload - blocked` is the wall hidden behind other work.
    pub fn wait_timed(self) -> (Arc<DeviceVar>, Duration, Duration) {
        let t0 = Instant::now();
        let (var, upload, inline) = self.shared.wait();
        let blocked = if inline { upload } else { t0.elapsed() };
        (var, upload, blocked)
    }
}

/// Recycled pinned-staging buffers for posted uploads. A posted transfer
/// snapshots mutable host state into a pooled buffer *at post time* (the
/// host→pinned memcpy), the engine burst copies pinned→device, and the
/// staging buffer parks back in the pool for the next post — steady-state
/// prefetch allocates no fresh host memory. Same [`BufferRecycler`]
/// discipline the host warehouse applies to its transient grid variables.
struct StagingPool {
    f64: BufferRecycler<f64>,
    u8: BufferRecycler<u8>,
}

impl StagingPool {
    fn new() -> Self {
        let tracker = AllocTracker::new();
        StagingPool {
            f64: BufferRecycler::new(tracker.clone()),
            u8: BufferRecycler::new(tracker),
        }
    }

    /// Copy `data` into a pooled staging buffer (the host→pinned memcpy).
    fn snapshot(&self, data: &DeviceData) -> DeviceData {
        match data {
            DeviceData::F64(v) => {
                let mut buf = self.f64.acquire(v.as_slice().len());
                buf.copy_from_slice(v.as_slice());
                DeviceData::F64(CcVariable::from_vec(v.region(), buf))
            }
            DeviceData::U8(v) => {
                let mut buf = self.u8.acquire(v.as_slice().len());
                buf.copy_from_slice(v.as_slice());
                DeviceData::U8(CcVariable::from_vec(v.region(), buf))
            }
        }
    }

    /// Park a buffer after its burst landed. Any origin is fine — spilled
    /// host copies re-uploaded by prefetch retire here too, which primes
    /// the pool without a warm-up phase.
    fn retire(&self, data: DeviceData) {
        match data {
            DeviceData::F64(v) => self.f64.retire(v.into_vec()),
            DeviceData::U8(v) => self.u8.retire(v.into_vec()),
        }
    }

    fn hits(&self) -> u64 {
        self.f64.hits() + self.u8.hits()
    }

    fn pooled_bytes(&self) -> u64 {
        self.f64.pooled_bytes() + self.u8.pooled_bytes()
    }
}

/// A patch-database slot: the device-resident variable plus its LRU stamp.
struct PatchEntry {
    var: Arc<DeviceVar>,
    last_use: u64,
}

/// A level-database slot: the device-resident replica, the timestep epoch
/// at which it was last validated against host data, and its LRU stamp.
struct LevelEntry {
    var: Arc<DeviceVar>,
    epoch: u64,
    last_use: u64,
}

/// An eviction candidate, ordered worst-victim-first: oldest `last_use`,
/// then patch entries before level replicas (a spilled patch round-trips
/// its exact bytes; a dropped replica costs a full re-upload), then a
/// deterministic key tiebreak so concurrent runs pick identical victims.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct VictimRank {
    last_use: u64,
    kind: u8,
    label: u8,
    index: u64,
}

/// One device's mutable store: patch database, level database, and the
/// host-side spill map for evicted patch variables. A single mutex guards
/// all three so eviction — which scans both databases and moves bytes into
/// the spill map — is atomic with respect to every lookup and insert.
#[derive(Default)]
struct StoreState {
    patch_db: HashMap<PatchKey, PatchEntry>,
    level_db: HashMap<LevelKey, LevelEntry>,
    /// Evicted patch variables, host-resident until re-upload or drop.
    spill: HashMap<PatchKey, DeviceData>,
    /// Posted-but-unconsumed prefetch uploads, keyed like the databases.
    /// The map entry — not the completion slot — elects the installer:
    /// removing an entry (supersede, clear, regrid, allocator pressure)
    /// *cancels* the upload, and a consumer that waited re-checks that its
    /// slot is still the mapped one before installing. Pending entries are
    /// never eviction victims (they are not in the databases yet), so
    /// their blocks stay pinned until consumed or canceled.
    pending_patch: HashMap<PatchKey, Arc<PendingUploadShared>>,
    pending_level: HashMap<LevelKey, Arc<PendingUploadShared>>,
    /// LRU clock: bumped on every access; entries stamp their `last_use`
    /// from it.
    clock: u64,
}

impl StoreState {
    #[inline]
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// One device's variable stores. The owning [`GpuDevice`] lives in the
/// fleet at the same index.
#[derive(Default)]
struct DeviceStore {
    state: StateMutex<StoreState>,
}

/// Fleet-aware variable store: per-device patch databases + per-device
/// level databases, with patch→device affinity routing and LRU
/// eviction/host-spill under memory pressure.
///
/// ```
/// use uintah_gpu::{GpuDataWarehouse, GpuDevice};
/// use uintah_grid::{CcVariable, FieldData, Region, VarLabel};
///
/// const ABSKG: VarLabel = VarLabel::new("abskg", 1);
/// let dw = GpuDataWarehouse::new(GpuDevice::k20x());
/// // Two concurrent patch tasks requesting the same coarse replica share
/// // one upload and one device copy (the level database).
/// let a = dw.ensure_level(ABSKG, 0, || {
///     FieldData::F64(CcVariable::filled(Region::cube(8), 0.9))
/// }).unwrap();
/// let b = dw.ensure_level(ABSKG, 0, || unreachable!("already resident")).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(dw.device().counters().h2d_transfers, 1);
/// ```
pub struct GpuDataWarehouse {
    fleet: DeviceFleet,
    stores: Vec<DeviceStore>,
    /// Patch→device overrides installed by the cost-balanced affinity
    /// policy; patches absent here fall back to the sticky hash.
    affinity: RwLock<HashMap<PatchId, DeviceId>>,
    level_db_enabled: bool,
    /// When true (the default), [`Self::take_patch_to_host_async`] posts the
    /// drain to the D2H copy engine and returns immediately; when false it
    /// completes inline — same handle API, same bytes, zero overlap — so the
    /// synchronous baseline runs the identical task-body code.
    async_d2h: bool,
    /// When true (the default), posted uploads run on the H2D copy-engine
    /// thread and consumers materialize them; when false every posted
    /// upload completes inline at post time — same staging pool, same
    /// engine bookkeeping, zero overlap — the bit-identical synchronous
    /// baseline `gpu_async_h2d = false` selects.
    async_h2d: bool,
    /// Recycled pinned-staging buffers for posted uploads; shared with the
    /// engine jobs that retire buffers after their burst lands.
    staging: Arc<StagingPool>,
    /// When true (the default), a failed device allocation evicts LRU
    /// entries (spilling patch data to host) and retries instead of
    /// surfacing OOM — the oversubscription path. When false the warehouse
    /// fails exactly at capacity, the pre-allocator behaviour.
    eviction: bool,
    /// Timestep epoch: bumped by [`Self::begin_timestep`]. Level-DB entries
    /// stamped with an older epoch are *stale* — still device-resident, but
    /// requiring revalidation (diff + incremental re-upload) before reuse
    /// via [`Self::ensure_level_fresh`]. One epoch governs every device.
    epoch: AtomicU64,
}

impl GpuDataWarehouse {
    /// A single-device warehouse with the level database enabled (the
    /// paper's Titan configuration).
    pub fn new(device: GpuDevice) -> Self {
        Self::with_level_db(device, true)
    }

    /// Control the level database explicitly (the E4 ablation disables it).
    pub fn with_level_db(device: GpuDevice, level_db_enabled: bool) -> Self {
        Self::with_options(device, level_db_enabled, true)
    }

    /// Full single-device construction: level database and async-D2H flags.
    pub fn with_options(device: GpuDevice, level_db_enabled: bool, async_d2h: bool) -> Self {
        Self::with_fleet(DeviceFleet::single(device), level_db_enabled, async_d2h)
    }

    /// Fleet construction: one patch DB + one level DB per device, LRU
    /// eviction enabled.
    pub fn with_fleet(fleet: DeviceFleet, level_db_enabled: bool, async_d2h: bool) -> Self {
        Self::with_fleet_opts(fleet, level_db_enabled, async_d2h, true)
    }

    /// Fleet construction with explicit eviction control: `eviction: false`
    /// restores hard-OOM-at-capacity (the ablation baseline for the
    /// oversubscription gate).
    pub fn with_fleet_opts(
        fleet: DeviceFleet,
        level_db_enabled: bool,
        async_d2h: bool,
        eviction: bool,
    ) -> Self {
        Self::with_fleet_full(fleet, level_db_enabled, async_d2h, true, eviction)
    }

    /// Full fleet construction: every flag explicit. `async_h2d: false`
    /// selects the bit-identical synchronous upload fallback (posted
    /// uploads complete inline with the same engine bookkeeping).
    pub fn with_fleet_full(
        fleet: DeviceFleet,
        level_db_enabled: bool,
        async_d2h: bool,
        async_h2d: bool,
        eviction: bool,
    ) -> Self {
        let stores = (0..fleet.num_devices()).map(|_| DeviceStore::default()).collect();
        Self {
            fleet,
            stores,
            affinity: RwLock::new(HashMap::new()),
            level_db_enabled,
            async_d2h,
            async_h2d,
            staging: Arc::new(StagingPool::new()),
            eviction,
            epoch: AtomicU64::new(0),
        }
    }

    /// Advance the timestep epoch. Level-DB entries persist on their
    /// devices but become stale: the next [`Self::ensure_level_fresh`]
    /// revalidates them against host data instead of trusting last step's
    /// bytes.
    pub fn begin_timestep(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Current timestep epoch.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Device 0 — the whole fleet for single-device warehouses.
    #[inline]
    pub fn device(&self) -> &GpuDevice {
        self.fleet.device(0)
    }

    /// The device at a fleet index.
    #[inline]
    pub fn device_at(&self, id: DeviceId) -> &GpuDevice {
        self.fleet.device(id)
    }

    /// The underlying fleet.
    #[inline]
    pub fn fleet(&self) -> &DeviceFleet {
        &self.fleet
    }

    /// Number of devices in the fleet.
    #[inline]
    pub fn num_devices(&self) -> usize {
        self.fleet.num_devices()
    }

    #[inline]
    pub fn level_db_enabled(&self) -> bool {
        self.level_db_enabled
    }

    /// Whether D2H drains are posted asynchronously to the copy engine.
    #[inline]
    pub fn async_d2h(&self) -> bool {
        self.async_d2h
    }

    /// Whether posted uploads run asynchronously on the H2D copy engine.
    #[inline]
    pub fn async_h2d(&self) -> bool {
        self.async_h2d
    }

    /// Whether memory pressure evicts LRU entries instead of failing.
    #[inline]
    pub fn eviction_enabled(&self) -> bool {
        self.eviction
    }

    /// The home device for a patch: the cost-balanced override if one is
    /// installed, else the deterministic sticky hash. Every patch op on
    /// this warehouse routes through here, so kernel-side puts and the
    /// D2H drain of the same patch always land on the same device.
    pub fn device_for_patch(&self, patch: PatchId) -> DeviceId {
        if self.fleet.num_devices() > 1 {
            if let Some(&d) = self.affinity.read().get(&patch) {
                return d;
            }
        }
        self.fleet.sticky_device(patch)
    }

    /// Install cost-balanced patch→device overrides (from an LPT pass over
    /// measured per-patch costs). Replaces the previous override set; a
    /// patch not mentioned reverts to its sticky home. Safe to call between
    /// timesteps only — per-patch state is transient within a step, so
    /// moving a patch's home never strands device-resident data.
    pub fn set_affinity(&self, assignments: &[(PatchId, DeviceId)]) {
        let mut map = self.affinity.write();
        map.clear();
        for &(p, d) in assignments {
            debug_assert!(d < self.fleet.num_devices());
            map.insert(p, d);
        }
    }

    /// Number of installed affinity overrides.
    pub fn affinity_overrides(&self) -> usize {
        self.affinity.read().len()
    }

    /// Evict the best victim from `st`'s databases: the least-recently-used
    /// entry with no handle outside the database (a task still holding the
    /// `Arc` pins the bytes — evicting under a running kernel would be a
    /// stale serve). Patch victims spill their bytes to the host map over
    /// the D2H engine; level victims are dropped outright (regenerable from
    /// host data at the next `ensure_level*`). Returns false when nothing
    /// is evictable.
    fn evict_one(device: &GpuDevice, st: &mut StoreState) -> bool {
        let patch_victim = st
            .patch_db
            .iter()
            .filter(|(_, e)| Arc::strong_count(&e.var) == 1 && e.var.size_bytes() > 0)
            .map(|(k, e)| {
                (
                    VictimRank {
                        last_use: e.last_use,
                        kind: 0,
                        label: k.0.id(),
                        index: k.1 .0 as u64,
                    },
                    *k,
                )
            })
            .min_by(|a, b| a.0.cmp(&b.0));
        let level_victim = st
            .level_db
            .iter()
            .filter(|(_, e)| Arc::strong_count(&e.var) == 1 && e.var.size_bytes() > 0)
            .map(|(k, e)| {
                (
                    VictimRank {
                        last_use: e.last_use,
                        kind: 1,
                        label: k.0.id(),
                        index: k.1 as u64,
                    },
                    *k,
                )
            })
            .min_by(|a, b| a.0.cmp(&b.0));
        match (patch_victim, level_victim) {
            (Some((pr, pk)), Some((lr, _))) if pr <= lr => Self::evict_patch(device, st, pk),
            (Some((_, pk)), None) => Self::evict_patch(device, st, pk),
            (_, Some((_, lk))) => {
                let e = st.level_db.remove(&lk).expect("victim chosen under lock");
                device.record_eviction(e.var.size_bytes());
                true
            }
            (None, None) => false,
        }
    }

    fn evict_patch(device: &GpuDevice, st: &mut StoreState, key: PatchKey) -> bool {
        let e = st.patch_db.remove(&key).expect("victim chosen under lock");
        let bytes = e.var.size_bytes();
        // Spill: the bytes cross PCIe device→host on the D2H engine (the
        // clone below is the drain memcpy), then the device copy drops.
        device.record_d2h(bytes);
        let t0 = Instant::now();
        let data = e.var.data().clone();
        device.record_d2h_busy(t0.elapsed());
        device.record_spill(bytes);
        device.record_eviction(bytes);
        st.spill.insert(key, data);
        true
    }

    /// Carve `bytes` from `dev`'s sub-allocator, evicting LRU entries and
    /// retrying on failure (when eviction is enabled). Each eviction frees
    /// a nonzero extent, so the loop terminates: either the allocation
    /// succeeds or nothing evictable remains. Before surfacing that error,
    /// one escalation: drain the D2H engine and retry — posted drains pin
    /// their source blocks until the copy lands, and under oversubscription
    /// those transients are routinely the mid-arena blocks whose release
    /// re-coalesces a hole big enough for the request (the simulated
    /// equivalent of the sync-then-retry dance real CUDA apps do on OOM).
    /// If that still fails and prefetch uploads are pending, a second
    /// escalation cancels them — demand allocations outrank predictions.
    fn alloc_with_evict(
        &self,
        dev: DeviceId,
        st: &mut StoreState,
        bytes: usize,
    ) -> Result<DeviceBlock, GpuError> {
        let device = self.fleet.device(dev);
        let mut drained = false;
        let mut canceled_h2d = false;
        loop {
            match device.alloc_block(bytes) {
                Ok(b) => return Ok(b),
                Err(e) => {
                    if !self.eviction {
                        return Err(e);
                    }
                    if Self::evict_one(device, st) {
                        continue;
                    }
                    if !drained && device.counters().d2h_inflight != 0 {
                        // Safe under the store lock: drain jobs touch only
                        // the allocator mutex and their own pending slots,
                        // never this store's state.
                        device.sync_d2h();
                        drained = true;
                        continue;
                    }
                    let has_pending =
                        !st.pending_patch.is_empty() || !st.pending_level.is_empty();
                    if !canceled_h2d && has_pending {
                        // Last escalation: cancel unconsumed prefetch
                        // uploads — demand allocations outrank predictions.
                        // The engine is drained first (upload jobs, like
                        // drains, never take store locks) so every slot is
                        // filled; patch bytes spill back to the host (the
                        // posted copy may be the only one — a re-posted
                        // spill entry), level predictions drop outright
                        // (regenerable from host data).
                        device.sync_h2d();
                        let patch_keys: Vec<PatchKey> = st.pending_patch.keys().copied().collect();
                        for key in patch_keys {
                            let shared =
                                st.pending_patch.remove(&key).expect("key listed under lock");
                            let (var, _, _) = shared.wait();
                            Self::evict_pending_to_spill(device, st, key, var);
                        }
                        let level_keys: Vec<LevelKey> = st.pending_level.keys().copied().collect();
                        for key in level_keys {
                            let shared =
                                st.pending_level.remove(&key).expect("key listed under lock");
                            let (var, _, _) = shared.wait();
                            device.record_eviction(var.size_bytes());
                        }
                        canceled_h2d = true;
                        continue;
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Spill a canceled pending-upload patch back to the host: the same
    /// metering as [`Self::evict_patch`] (the bytes cross PCIe device→host,
    /// then the device copy drops when the last slot handle goes).
    fn evict_pending_to_spill(
        device: &GpuDevice,
        st: &mut StoreState,
        key: PatchKey,
        var: Arc<DeviceVar>,
    ) {
        let bytes = var.size_bytes();
        device.record_d2h(bytes);
        let t0 = Instant::now();
        let data = var.data().clone();
        device.record_d2h_busy(t0.elapsed());
        device.record_spill(bytes);
        device.record_eviction(bytes);
        st.spill.insert(key, data);
    }

    /// Upload `data` to `dev` under an already-held store lock: reserve (with
    /// eviction), meter the H2D transfer, wrap in a shared handle.
    fn upload_locked(
        &self,
        dev: DeviceId,
        st: &mut StoreState,
        data: DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        let bytes = data.size_bytes();
        let block = self.alloc_with_evict(dev, st, bytes)?;
        self.fleet.device(dev).record_h2d(bytes);
        Ok(Arc::new(DeviceVar { data, block }))
    }

    fn upload_on(&self, dev: DeviceId, data: DeviceData) -> Result<Arc<DeviceVar>, GpuError> {
        let mut st = self.stores[dev].state.lock();
        self.upload_locked(dev, &mut st, data)
    }

    /// Materialize host data through `producer`, charging the wall time to
    /// the target device's H2D engine occupancy: the host-side staging/
    /// revalidation window is what occupies the H2D engine in this model.
    fn produce_timed_on(&self, dev: DeviceId, producer: impl FnOnce() -> DeviceData) -> DeviceData {
        let t0 = Instant::now();
        let data = producer();
        self.fleet.device(dev).record_h2d_busy(t0.elapsed());
        data
    }

    /// Run one coalesced staged burst on `dev`'s H2D engine: every entry's
    /// staging buffer is copied into its device variable (the PCIe burst),
    /// retired back to the pool, and its completion slot filled with the
    /// whole burst's wall time — one metered transfer regardless of how
    /// many variables rode it. In the synchronous fallback the burst
    /// completes inline with identical transfer/stream/in-flight
    /// bookkeeping and the full wall charged as consumer stall.
    fn post_upload(
        &self,
        dev: DeviceId,
        batch: Vec<(DeviceData, DeviceBlock, Arc<PendingUploadShared>)>,
    ) -> (Stream, bool) {
        let device = self.fleet.device(dev);
        let total: usize = batch.iter().map(|(d, _, _)| d.size_bytes()).sum();
        let pool = Arc::clone(&self.staging);
        if !self.async_h2d {
            let stream = device.begin_inline_h2d(total);
            let t0 = Instant::now();
            let done: Vec<_> = batch
                .into_iter()
                .map(|(staged, block, shared)| {
                    let data = staged.clone();
                    pool.retire(staged);
                    (Arc::new(DeviceVar { data, block }), shared)
                })
                .collect();
            let upload = t0.elapsed();
            device.end_inline_h2d(stream, upload);
            // The inline burst ran on the poster's thread: the stall is
            // paid here, so it is metered here; nothing was overlapped.
            device.record_h2d_wait(upload);
            for (var, shared) in done {
                shared.fill(var, upload, true);
            }
            return (stream, true);
        }
        let stream = device.post_h2d(total, move || {
            let t0 = Instant::now();
            let done: Vec<_> = batch
                .into_iter()
                .map(|(staged, block, shared)| {
                    let data = staged.clone();
                    pool.retire(staged);
                    (Arc::new(DeviceVar { data, block }), shared)
                })
                .collect();
            let upload = t0.elapsed();
            for (var, shared) in done {
                shared.fill(var, upload, false);
            }
        });
        (stream, false)
    }

    /// Wait out a posted upload, metering the consumer-visible stall and
    /// the engine wall hidden behind other work. Inline (synchronous
    /// fallback) uploads were fully charged at post time, so the consumer
    /// side meters nothing.
    fn settle_upload(&self, dev: DeviceId, shared: &PendingUploadShared) -> Arc<DeviceVar> {
        let t0 = Instant::now();
        let (var, upload, inline) = shared.wait();
        if !inline {
            let blocked = t0.elapsed();
            let device = self.fleet.device(dev);
            device.record_h2d_wait(blocked);
            device.record_h2d_overlap(upload.saturating_sub(blocked));
        }
        var
    }

    /// Allocate a kernel *output* variable on the patch's home device (no
    /// host→device transfer: the data is produced on the GPU).
    pub fn alloc_patch_output(
        &self,
        label: VarLabel,
        patch: PatchId,
        data: DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        let dev = self.device_for_patch(patch);
        let mut st = self.stores[dev].state.lock();
        st.spill.remove(&(label, patch));
        // A kernel output supersedes (cancels) any posted upload in flight.
        st.pending_patch.remove(&(label, patch));
        let bytes = data.size_bytes();
        let block = self.alloc_with_evict(dev, &mut st, bytes)?;
        let var = Arc::new(DeviceVar { data, block });
        let clock = st.tick();
        st.patch_db.insert(
            (label, patch),
            PatchEntry {
                var: Arc::clone(&var),
                last_use: clock,
            },
        );
        Ok(var)
    }

    /// Copy a per-patch variable host→device and register it on the
    /// patch's home device.
    pub fn put_patch(
        &self,
        label: VarLabel,
        patch: PatchId,
        data: DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        let dev = self.device_for_patch(patch);
        let mut st = self.stores[dev].state.lock();
        // Fresh data supersedes any spilled copy of this variable — and
        // cancels any posted upload still in flight.
        st.spill.remove(&(label, patch));
        st.pending_patch.remove(&(label, patch));
        let var = self.upload_locked(dev, &mut st, data)?;
        let clock = st.tick();
        st.patch_db.insert(
            (label, patch),
            PatchEntry {
                var: Arc::clone(&var),
                last_use: clock,
            },
        );
        Ok(var)
    }

    /// Post the host→device copy of a per-patch variable to its home
    /// device's H2D copy engine and return a [`PendingH2D`] completion
    /// handle. The host bytes are snapshotted into the recycled staging
    /// pool *before* this returns — the caller may mutate or drop its
    /// buffer immediately — and the device block is carved (with LRU
    /// eviction) at post time, so capacity errors surface here, not on the
    /// engine thread. The post supersedes any resident, spilled, or
    /// previously posted copy of the variable; the next
    /// [`Self::get_patch`] installs the finished upload into the patch DB,
    /// blocking only for the part of the burst not already hidden.
    ///
    /// In synchronous-fallback mode (`async_h2d == false`) the burst
    /// completes inline before returning — identical data, identical
    /// transfer/stream/in-flight bookkeeping via the device's inline-H2D
    /// pair, the full upload wall metered as consumer stall.
    pub fn put_patch_async(
        &self,
        label: VarLabel,
        patch: PatchId,
        data: &DeviceData,
    ) -> Result<PendingH2D, GpuError> {
        let dev = self.device_for_patch(patch);
        let key = (label, patch);
        let bytes = data.size_bytes();
        let mut st = self.stores[dev].state.lock();
        // The posted bytes are the variable's new truth: drop every older
        // copy (resident, spilled, or a prior in-flight post — which is
        // thereby canceled, never installed).
        st.patch_db.remove(&key);
        st.spill.remove(&key);
        st.pending_patch.remove(&key);
        let block = self.alloc_with_evict(dev, &mut st, bytes)?;
        let staged = self.staging.snapshot(data);
        let shared = Arc::new(PendingUploadShared::default());
        st.pending_patch.insert(key, Arc::clone(&shared));
        drop(st);
        let (stream, inline) = self.post_upload(dev, vec![(staged, block, Arc::clone(&shared))]);
        Ok(PendingH2D {
            shared,
            bytes,
            stream,
            inline,
        })
    }

    /// Device-side handle for a per-patch variable. A posted upload in
    /// flight for this key is *materialized* here: the call blocks only
    /// for the part of the burst not already hidden, then installs the
    /// finished variable into the patch DB (first consumer wins; a post
    /// canceled while waiting is retried against current state, never
    /// served stale). A variable evicted to the host spill map is
    /// transparently re-uploaded (metered as an H2D transfer and counted
    /// as a re-upload); `None` means the variable is neither resident,
    /// pending, nor spilled — or re-upload failed because even after
    /// eviction nothing fits, in which case the spilled copy is kept.
    pub fn get_patch(&self, label: VarLabel, patch: PatchId) -> Option<Arc<DeviceVar>> {
        let dev = self.device_for_patch(patch);
        let device = self.fleet.device(dev);
        loop {
            let mut st = self.stores[dev].state.lock();
            let clock = st.tick();
            if let Some(e) = st.patch_db.get_mut(&(label, patch)) {
                e.last_use = clock;
                return Some(Arc::clone(&e.var));
            }
            // A posted upload for this key: wait it out off-lock, then
            // confirm the pending entry is still *this* slot — a regrid
            // clear or a superseding write while we waited cancels the
            // install and we retry against whatever is current.
            if let Some(shared) = st.pending_patch.get(&(label, patch)).map(Arc::clone) {
                drop(st);
                let var = self.settle_upload(dev, &shared);
                let mut st = self.stores[dev].state.lock();
                match st.pending_patch.get(&(label, patch)) {
                    Some(cur) if Arc::ptr_eq(cur, &shared) => {
                        st.pending_patch.remove(&(label, patch));
                        let clock = st.tick();
                        st.patch_db.insert(
                            (label, patch),
                            PatchEntry {
                                var: Arc::clone(&var),
                                last_use: clock,
                            },
                        );
                        return Some(var);
                    }
                    _ => continue,
                }
            }
            // Transparent re-upload from the host spill map.
            let data = st.spill.remove(&(label, patch))?;
            let bytes = data.size_bytes();
            let block = match self.alloc_with_evict(dev, &mut st, bytes) {
                Ok(b) => b,
                Err(_) => {
                    st.spill.insert((label, patch), data);
                    return None;
                }
            };
            device.record_h2d(bytes);
            device.record_reupload(bytes);
            let var = Arc::new(DeviceVar { data, block });
            st.patch_db.insert(
                (label, patch),
                PatchEntry {
                    var: Arc::clone(&var),
                    last_use: clock,
                },
            );
            return Some(var);
        }
    }

    /// Copy a per-patch variable device→host and drop it from the device
    /// (the task-output path: e.g. `divQ` after the RMCRT kernel). Blocks
    /// the calling thread for the whole drain; prefer
    /// [`Self::take_patch_to_host_async`] from task bodies. A variable that
    /// was evicted is served from the spill map with no further transfer —
    /// its bytes already crossed PCIe at eviction time.
    pub fn take_patch_to_host(&self, label: VarLabel, patch: PatchId) -> Option<DeviceData> {
        let dev = self.device_for_patch(patch);
        let device = self.fleet.device(dev);
        let mut st = self.stores[dev].state.lock();
        if let Some(e) = st.patch_db.remove(&(label, patch)) {
            drop(st);
            device.record_d2h(e.var.size_bytes());
            let t0 = Instant::now();
            let data = e.var.data().clone();
            device.record_d2h_busy(t0.elapsed());
            return Some(data);
        }
        if st.pending_patch.contains_key(&(label, patch)) {
            // A posted upload is the variable's current truth: materialize
            // it into the DB, then take through the normal D2H path.
            drop(st);
            self.get_patch(label, patch)?;
            return self.take_patch_to_host(label, patch);
        }
        st.spill.remove(&(label, patch))
    }

    /// Post the device→host copy of a per-patch variable to its home
    /// device's D2H copy engine and return a [`PendingD2H`] completion
    /// handle; the entry is removed from the patch DB immediately (the task
    /// is done with it) but its device memory stays reserved until the
    /// drain completes. The drain — the actual memcpy of the bytes — runs
    /// on that device's engine thread, overlapping whatever the scheduler
    /// executes next (including kernels and drains on *other* devices); the
    /// first consumer to `wait()` blocks only for the part of the drain not
    /// already hidden.
    ///
    /// In synchronous-fallback mode (`async_d2h == false`) the drain
    /// completes inline before returning — identical data, identical
    /// transfer/stream/in-flight bookkeeping (via the device's inline-D2H
    /// pair), `blocked == drain` so the reported overlap is zero. A variable
    /// already evicted to the spill map returns an already-complete handle
    /// with no new transfer in either mode.
    pub fn take_patch_to_host_async(&self, label: VarLabel, patch: PatchId) -> Option<PendingD2H> {
        let dev = self.device_for_patch(patch);
        let device = self.fleet.device(dev);
        let mut st = self.stores[dev].state.lock();
        if !st.patch_db.contains_key(&(label, patch)) && st.pending_patch.contains_key(&(label, patch))
        {
            // A posted upload is the variable's current truth: materialize
            // it into the DB first, then post the drain as usual.
            drop(st);
            self.get_patch(label, patch)?;
            return self.take_patch_to_host_async(label, patch);
        }
        let Some(e) = st.patch_db.remove(&(label, patch)) else {
            let data = st.spill.remove(&(label, patch))?;
            drop(st);
            return Some(PendingD2H::complete(data, device.next_stream()));
        };
        drop(st);
        let var = e.var;
        let bytes = var.size_bytes();
        let shared = Arc::new(PendingShared::default());
        if !self.async_d2h {
            // Inline fallback: same engine bookkeeping as the posted path —
            // the transfer is metered, counted in flight, and stream-tagged
            // for the duration of the drain, so sync_d2h/inflight accounting
            // is mode-independent.
            let stream = device.begin_inline_d2h(bytes);
            let t0 = Instant::now();
            let data = var.data().clone();
            let drain = t0.elapsed();
            drop(var);
            device.end_inline_d2h(stream, drain);
            *shared.slot.lock().unwrap() = Some((data, drain));
            return Some(PendingD2H {
                shared,
                bytes,
                stream,
                inline: true,
            });
        }
        let sh = Arc::clone(&shared);
        let stream = device.post_d2h(bytes, move || {
            let t0 = Instant::now();
            let data = var.data().clone();
            let drain = t0.elapsed();
            // Device memory is released here, when the engine finishes the
            // drain — not at post time.
            drop(var);
            *sh.slot.lock().unwrap() = Some((data, drain));
            sh.done.notify_all();
        });
        Some(PendingD2H {
            shared,
            bytes,
            stream,
            inline: false,
        })
    }

    /// Drop a per-patch input without a device→host transfer (inputs are
    /// discarded after the kernel; only outputs cross PCIe back). Clears
    /// any spilled copy too, and cancels a posted upload still in flight.
    pub fn drop_patch(&self, label: VarLabel, patch: PatchId) {
        let dev = self.device_for_patch(patch);
        let mut st = self.stores[dev].state.lock();
        st.patch_db.remove(&(label, patch));
        st.spill.remove(&(label, patch));
        st.pending_patch.remove(&(label, patch));
    }

    /// Obtain the shared per-level variable on device 0, uploading it at
    /// most once. See [`Self::ensure_level_on`] for the fleet form.
    pub fn ensure_level(
        &self,
        label: VarLabel,
        level: LevelIndex,
        producer: impl FnOnce() -> DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        self.ensure_level_on(0, label, level, producer)
    }

    /// Obtain the shared per-level variable *on a specific device*,
    /// uploading it at most once per device.
    ///
    /// `producer` materializes the host-side data (e.g. the coarsened
    /// radiative properties) and is only invoked when an upload is needed.
    /// With the level DB disabled, every call uploads a private copy —
    /// reproducing the redundant-copy behaviour the paper eliminated.
    pub fn ensure_level_on(
        &self,
        dev: DeviceId,
        label: VarLabel,
        level: LevelIndex,
        producer: impl FnOnce() -> DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        if !self.level_db_enabled {
            return self.upload_on(dev, self.produce_timed_on(dev, producer));
        }
        // One mutex guards the whole store, so holding it across the
        // check-and-upload is what prevents duplicate uploads under
        // contention (uploads are rare: once per level variable per step).
        let mut st = self.stores[dev].state.lock();
        let clock = st.tick();
        if let Some(e) = st.level_db.get_mut(&(label, level)) {
            e.last_use = clock;
            return Ok(Arc::clone(&e.var));
        }
        let host = self.produce_timed_on(dev, producer);
        let var = self.upload_locked(dev, &mut st, host)?;
        st.level_db.insert(
            (label, level),
            LevelEntry {
                var: Arc::clone(&var),
                epoch: self.epoch(),
                last_use: clock,
            },
        );
        Ok(var)
    }

    /// Epoch-aware [`Self::ensure_level`] on device 0. See
    /// [`Self::ensure_level_fresh_on`] for the fleet form.
    pub fn ensure_level_fresh(
        &self,
        label: VarLabel,
        level: LevelIndex,
        producer: impl FnOnce() -> DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        self.ensure_level_fresh_on(0, label, level, producer)
    }

    /// Like [`Self::ensure_level_on`], but epoch-aware: a replica persisted
    /// from an earlier timestep is *revalidated* instead of blindly shared.
    ///
    /// * Entry validated this epoch → share it, zero PCIe traffic, and the
    ///   producer is never invoked.
    /// * Stale entry → invoke the producer and diff against the resident
    ///   bytes ([`DeviceData::diff_bytes`](uintah_grid::FieldData::diff_bytes)).
    ///   Unchanged data re-stamps the epoch with **no transfer**; changed
    ///   data is re-uploaded metering only the changed bytes (the
    ///   incremental-update model of §III-C: the coarse radiative properties
    ///   barely move between radiation solves).
    /// * No entry (including one evicted under memory pressure) → full
    ///   upload, as in [`Self::ensure_level_on`].
    ///
    /// Each device revalidates independently: a replica fresh on device 0
    /// says nothing about device 1's copy. With the level DB disabled (E4
    /// ablation) every call is a full private upload, every timestep — the
    /// pre-optimization behaviour.
    pub fn ensure_level_fresh_on(
        &self,
        dev: DeviceId,
        label: VarLabel,
        level: LevelIndex,
        producer: impl FnOnce() -> DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        if !self.level_db_enabled {
            return self.upload_on(dev, self.produce_timed_on(dev, producer));
        }
        let now = self.epoch();
        let key = (label, level);
        let mut st = self.stores[dev].state.lock();
        let clock = st.tick();
        let fresh = st.level_db.get_mut(&key).and_then(|e| {
            if e.epoch == now {
                e.last_use = clock;
                Some(Arc::clone(&e.var))
            } else {
                None
            }
        });
        if let Some(var) = fresh {
            // A prediction superseded by an already-fresh entry is dead
            // weight: cancel it so its block frees when the burst lands.
            st.pending_level.remove(&key);
            return Ok(var);
        }
        if let Some(shared) = st.pending_level.get(&key).map(Arc::clone) {
            // A posted prediction for this replica: wait it out off-lock,
            // then *verify* — the producer's output is this step's truth,
            // and the prediction installs only when it matches bit for bit
            // (which is what keeps divQ identical in both upload modes).
            drop(st);
            let pvar = self.settle_upload(dev, &shared);
            let host = self.produce_timed_on(dev, producer);
            let mut st = self.stores[dev].state.lock();
            let clock = st.tick();
            let ours = match st.pending_level.get(&key) {
                Some(cur) if Arc::ptr_eq(cur, &shared) => {
                    st.pending_level.remove(&key);
                    true
                }
                // Canceled or superseded while waiting: revalidate
                // whatever is current instead.
                _ => false,
            };
            if ours && pvar.data().diff_bytes(&host) == 0 {
                st.level_db.insert(
                    key,
                    LevelEntry {
                        var: Arc::clone(&pvar),
                        epoch: now,
                        last_use: clock,
                    },
                );
                return Ok(pvar);
            }
            // Mispredicted (the wasted burst was already metered as engine
            // traffic) or canceled: release the predicted bytes and fall
            // back to the normal revalidation path with the host data
            // already in hand.
            drop(pvar);
            return self.revalidate_level_locked(dev, &mut st, key, now, clock, host);
        }
        let host = self.produce_timed_on(dev, producer);
        self.revalidate_level_locked(dev, &mut st, key, now, clock, host)
    }

    /// The stale/missing-replica revalidation core of
    /// [`Self::ensure_level_fresh_on`], entered with the host data already
    /// produced and the store lock held.
    fn revalidate_level_locked(
        &self,
        dev: DeviceId,
        st: &mut StoreState,
        key: LevelKey,
        now: u64,
        clock: u64,
        host: DeviceData,
    ) -> Result<Arc<DeviceVar>, GpuError> {
        let device = self.fleet.device(dev);
        match st.level_db.get(&key).map(|e| Arc::clone(&e.var)) {
            Some(var) => {
                // Stale resident replica: revalidate against host data.
                let changed = var.data().diff_bytes(&host);
                let same_size = host.size_bytes() == var.size_bytes();
                // Drop the probe handle so the DB entry can observe a
                // unique Arc (the in-place condition) under the held lock.
                drop(var);
                if changed == 0 {
                    let e = st.level_db.get_mut(&key).expect("entry present: lock held");
                    e.epoch = now;
                    e.last_use = clock;
                    return Ok(Arc::clone(&e.var));
                }
                if same_size {
                    let e = st.level_db.get_mut(&key).expect("entry present: lock held");
                    if let Some(v) = Arc::get_mut(&mut e.var) {
                        // Overwrite in place: this DB holds the only handle,
                        // so the update happens device-side and only the
                        // changed bytes cross PCIe.
                        device.record_h2d(changed);
                        v.data = host;
                        e.epoch = now;
                        e.last_use = clock;
                        return Ok(Arc::clone(&e.var));
                    }
                }
                // Replace: concurrent holders keep the old bytes alive
                // until they drop, so the *whole* new buffer crosses PCIe
                // into a fresh allocation. Reserve first — an OOM here must
                // leave the counters and the stale epoch untouched — then
                // meter the full replacement buffer, not just the diff.
                // (Eviction may reclaim the unreferenced old entry itself,
                // which is fine: it is superseded by the insert below.)
                let bytes = host.size_bytes();
                let block = self.alloc_with_evict(dev, st, bytes)?;
                device.record_h2d(bytes);
                let var = Arc::new(DeviceVar { data: host, block });
                st.level_db.insert(
                    key,
                    LevelEntry {
                        var: Arc::clone(&var),
                        epoch: now,
                        last_use: clock,
                    },
                );
                Ok(var)
            }
            None => {
                let var = self.upload_locked(dev, st, host)?;
                st.level_db.insert(
                    key,
                    LevelEntry {
                        var: Arc::clone(&var),
                        epoch: now,
                        last_use: clock,
                    },
                );
                Ok(var)
            }
        }
    }

    /// Post one predicted level-replica revalidation on `dev` without
    /// blocking for the burst. `host` is the *predicted* next-step data:
    /// if a resident replica already matches it bit for bit nothing is
    /// posted (the next `ensure_level_fresh_on` will re-stamp with no
    /// transfer either way); a changed or missing replica is staged
    /// through the pinned pool and posted to the H2D engine. Installs
    /// nothing — the next `ensure_level_fresh_on` verifies the prediction
    /// against its producer's output before trusting it, so a wrong
    /// prediction costs a wasted burst, never a wrong answer. Returns
    /// whether an upload was posted.
    pub fn prefetch_level_on(
        &self,
        dev: DeviceId,
        label: VarLabel,
        level: LevelIndex,
        host: &DeviceData,
    ) -> bool {
        if !self.level_db_enabled {
            return false;
        }
        let key = (label, level);
        let mut st = self.stores[dev].state.lock();
        if st.pending_level.contains_key(&key) {
            return false; // one prediction in flight is enough
        }
        let resident_matches = st
            .level_db
            .get(&key)
            .is_some_and(|e| e.var.data().diff_bytes(host) == 0);
        if resident_matches {
            return false;
        }
        let Ok(block) = self.alloc_with_evict(dev, &mut st, host.size_bytes()) else {
            return false; // capacity says no: the step will upload inline
        };
        let staged = self.staging.snapshot(host);
        let shared = Arc::new(PendingUploadShared::default());
        st.pending_level.insert(key, Arc::clone(&shared));
        drop(st);
        self.post_upload(dev, vec![(staged, block, shared)]);
        true
    }

    /// Cross-step prefetch: post predicted revalidations for every level
    /// replica resident on any device, coalesced into one staged burst per
    /// device. `source` supplies the predicted host data per
    /// `(label, level)` — typically the current step's sealed level fields,
    /// posted at step close so the bursts overlap the inter-step CPU work.
    /// Replicas whose resident bytes already match the prediction post
    /// nothing; capacity pressure skips (never evicts for) a prediction.
    /// Returns the number of uploads posted.
    pub fn prefetch_resident_levels(
        &self,
        source: impl Fn(VarLabel, LevelIndex) -> Option<Arc<DeviceData>>,
    ) -> usize {
        if !self.level_db_enabled {
            return 0;
        }
        let mut posted = 0;
        for dev in 0..self.num_devices() {
            let mut st = self.stores[dev].state.lock();
            let keys: Vec<LevelKey> = st.level_db.keys().copied().collect();
            let mut batch = Vec::new();
            for key in keys {
                if st.pending_level.contains_key(&key) {
                    continue;
                }
                let Some(host) = source(key.0, key.1) else {
                    continue;
                };
                let matches = st
                    .level_db
                    .get(&key)
                    .is_some_and(|e| e.var.data().diff_bytes(&host) == 0);
                if matches {
                    continue;
                }
                let Ok(block) = self.alloc_with_evict(dev, &mut st, host.size_bytes()) else {
                    continue;
                };
                let staged = self.staging.snapshot(&host);
                let shared = Arc::new(PendingUploadShared::default());
                st.pending_level.insert(key, Arc::clone(&shared));
                batch.push((staged, block, shared));
                posted += 1;
            }
            drop(st);
            if !batch.is_empty() {
                self.post_upload(dev, batch);
            }
        }
        posted
    }

    /// Cross-step prefetch of spill re-uploads: post every host-spilled
    /// patch variable back to its device in one coalesced burst per device,
    /// so the next step's `get_patch` materializes a finished upload
    /// instead of paying the re-upload wall inline. The spilled host copy
    /// is authoritative (it *is* the variable), so it rides the burst
    /// directly as staged data — no snapshot copy, no verify at consume —
    /// and its buffer retires into the staging pool afterwards. Entries
    /// whose allocation fails even after eviction stay spilled. Returns the
    /// number of uploads posted.
    pub fn prefetch_spill_reuploads(&self) -> usize {
        let mut posted = 0;
        for dev in 0..self.num_devices() {
            let device = self.fleet.device(dev);
            let mut st = self.stores[dev].state.lock();
            let keys: Vec<PatchKey> = st.spill.keys().copied().collect();
            let mut batch = Vec::new();
            for key in keys {
                let data = st.spill.remove(&key).expect("key listed under lock");
                let bytes = data.size_bytes();
                let Ok(block) = self.alloc_with_evict(dev, &mut st, bytes) else {
                    st.spill.insert(key, data);
                    continue;
                };
                device.record_reupload(bytes);
                let shared = Arc::new(PendingUploadShared::default());
                st.pending_patch.insert(key, Arc::clone(&shared));
                batch.push((data, block, shared));
                posted += 1;
            }
            drop(st);
            if !batch.is_empty() {
                self.post_upload(dev, batch);
            }
        }
        posted
    }

    /// Look up a level variable on device 0 without uploading.
    pub fn get_level(&self, label: VarLabel, level: LevelIndex) -> Option<Arc<DeviceVar>> {
        self.get_level_on(0, label, level)
    }

    /// Look up a level variable on a device without uploading (ignores
    /// staleness).
    pub fn get_level_on(
        &self,
        dev: DeviceId,
        label: VarLabel,
        level: LevelIndex,
    ) -> Option<Arc<DeviceVar>> {
        self.stores[dev]
            .state
            .lock()
            .level_db
            .get(&(label, level))
            .map(|e| Arc::clone(&e.var))
    }

    /// The epoch a device-0 level entry was last validated at, if resident.
    pub fn level_entry_epoch(&self, label: VarLabel, level: LevelIndex) -> Option<u64> {
        self.level_entry_epoch_on(0, label, level)
    }

    /// The epoch a level entry was last validated at on a device.
    pub fn level_entry_epoch_on(
        &self,
        dev: DeviceId,
        label: VarLabel,
        level: LevelIndex,
    ) -> Option<u64> {
        self.stores[dev].state.lock().level_db.get(&(label, level)).map(|e| e.epoch)
    }

    /// Drop every per-level entry on every device (end of radiation
    /// timestep).
    pub fn clear_level_db(&self) {
        for (i, s) in self.stores.iter().enumerate() {
            let mut st = s.state.lock();
            if !st.pending_level.is_empty() {
                // Let in-flight bursts land so canceling below frees their
                // blocks immediately (engine jobs never take store locks).
                self.fleet.device(i).sync_h2d();
            }
            st.level_db.clear();
            // Canceled, not installed: the consumer that was going to
            // materialize these finds the map entry gone and regenerates.
            st.pending_level.clear();
        }
    }

    /// Drop every per-patch entry on every device, including host-spilled
    /// copies. Posted patch uploads still in flight are canceled (their
    /// blocks free when the burst lands and the last slot handle drops);
    /// posted *level* predictions survive — this runs at every step close,
    /// and canceling there would defeat cross-step prefetch.
    pub fn clear_patch_db(&self) {
        for (i, s) in self.stores.iter().enumerate() {
            let mut st = s.state.lock();
            if !st.pending_patch.is_empty() {
                // Let in-flight bursts land so canceling below frees their
                // blocks immediately (engine jobs never take store locks).
                self.fleet.device(i).sync_h2d();
            }
            st.patch_db.clear();
            st.spill.clear();
            st.pending_patch.clear();
        }
    }

    /// Evict everything on every device for a regrid. See
    /// [`Self::invalidate_for_regrid_on`] for the targeted per-device form.
    pub fn invalidate_for_regrid(&self) -> (usize, usize) {
        let all: Vec<DeviceId> = (0..self.num_devices()).collect();
        self.invalidate_for_regrid_on(&all)
    }

    /// Evict the named devices for a regrid: wait for each device's D2H
    /// copy-engine timeline to drain (releasing in-flight device memory),
    /// then drop its per-patch and per-level entries — and any host-spilled
    /// copies, which describe pre-regrid patches — so
    /// `ensure_level_fresh_on` repopulates from the post-regrid host data
    /// instead of trusting a poisoned cache. Devices *not* named keep their
    /// resident replicas — a regrid that only migrates patches homed on
    /// device 2 must not force devices 0/1/3 to re-upload their level DBs.
    /// Returns total `(patch_entries, level_entries)` evicted. Entries
    /// whose `Arc<DeviceVar>` is still held by a task release their device
    /// memory when that last handle drops.
    pub fn invalidate_for_regrid_on(&self, devices: &[DeviceId]) -> (usize, usize) {
        let mut patches = 0;
        let mut levels = 0;
        for &dev in devices {
            self.fleet.device(dev).sync_d2h();
            // Let in-flight upload bursts land before canceling them: the
            // engine never takes store locks, so this cannot deadlock, and
            // afterwards every pending slot is filled — dropping the map
            // entries below releases the uploaded blocks immediately
            // instead of installing pre-regrid bytes.
            self.fleet.device(dev).sync_h2d();
            let mut st = self.stores[dev].state.lock();
            patches += st.patch_db.len();
            st.patch_db.clear();
            st.spill.clear();
            st.pending_patch.clear();
            levels += st.level_db.len();
            st.level_db.clear();
            st.pending_level.clear();
        }
        (patches, levels)
    }

    /// Block until every device's D2H copy-engine timeline is empty.
    pub fn sync_d2h_all(&self) {
        self.fleet.sync_d2h_all();
    }

    /// Block until every device's H2D copy-engine timeline is empty.
    /// Pending uploads stay pending (completed, uninstalled) — consumers
    /// still materialize them; this only guarantees no burst is mid-copy.
    pub fn sync_h2d_all(&self) {
        self.fleet.sync_h2d_all();
    }

    /// One counter snapshot per device, in device order.
    pub fn counters_per_device(&self) -> Vec<DeviceCounters> {
        self.fleet.counters_per_device()
    }

    /// Number of live per-level entries across all devices.
    pub fn level_entries(&self) -> usize {
        self.stores.iter().map(|s| s.state.lock().level_db.len()).sum()
    }

    /// Number of live per-level entries on one device.
    pub fn level_entries_on(&self, dev: DeviceId) -> usize {
        self.stores[dev].state.lock().level_db.len()
    }

    /// Number of live per-patch entries across all devices.
    pub fn patch_entries(&self) -> usize {
        self.stores.iter().map(|s| s.state.lock().patch_db.len()).sum()
    }

    /// Number of live per-patch entries on one device.
    pub fn patch_entries_on(&self, dev: DeviceId) -> usize {
        self.stores[dev].state.lock().patch_db.len()
    }

    /// Bytes registered in one device's databases (patch + level). Excludes
    /// variables alive only through external handles (in-flight drains,
    /// disabled-level-DB uploads), which the device meter still counts —
    /// the two reconcile exactly at quiescent points.
    pub fn resident_bytes_on(&self, dev: DeviceId) -> usize {
        let st = self.stores[dev].state.lock();
        st.patch_db.values().map(|e| e.var.size_bytes()).sum::<usize>()
            + st.level_db.values().map(|e| e.var.size_bytes()).sum::<usize>()
    }

    /// Bytes registered in every device's databases.
    pub fn resident_bytes(&self) -> usize {
        (0..self.num_devices()).map(|d| self.resident_bytes_on(d)).sum()
    }

    /// Number of host-spilled patch variables on one device.
    pub fn spill_entries_on(&self, dev: DeviceId) -> usize {
        self.stores[dev].state.lock().spill.len()
    }

    /// Number of host-spilled patch variables across all devices.
    pub fn spill_entries(&self) -> usize {
        (0..self.num_devices()).map(|d| self.spill_entries_on(d)).sum()
    }

    /// Host bytes held in one device's spill map.
    pub fn spill_bytes_on(&self, dev: DeviceId) -> usize {
        self.stores[dev].state.lock().spill.values().map(|d| d.size_bytes()).sum()
    }

    /// Host bytes held in every device's spill map.
    pub fn spill_bytes(&self) -> usize {
        (0..self.num_devices()).map(|d| self.spill_bytes_on(d)).sum()
    }

    /// Posted-but-unconsumed prefetch uploads (patch + level) across all
    /// devices.
    pub fn pending_uploads(&self) -> usize {
        self.stores
            .iter()
            .map(|s| {
                let st = s.state.lock();
                st.pending_patch.len() + st.pending_level.len()
            })
            .sum()
    }

    /// Host bytes parked in the recycled staging pool, ready for reuse.
    pub fn staging_pooled_bytes(&self) -> u64 {
        self.staging.pooled_bytes()
    }

    /// Staging-buffer acquisitions served from the pool instead of a fresh
    /// allocation.
    pub fn staging_reuse_hits(&self) -> u64 {
        self.staging.hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::{CcVariable, Region};

    const ABSKG: VarLabel = VarLabel::new("abskg", 0);
    const DIVQ: VarLabel = VarLabel::new("divQ", 3);

    fn field(n: i32, value: f64) -> DeviceData {
        DeviceData::F64(CcVariable::filled(Region::cube(n), value))
    }

    #[test]
    fn patch_put_get_take_roundtrip() {
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let p = PatchId(4);
        dw.put_patch(DIVQ, p, field(8, 1.5)).unwrap();
        assert_eq!(dw.patch_entries(), 1);
        let v = dw.get_patch(DIVQ, p).unwrap();
        assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], 1.5);
        let host = dw.take_patch_to_host(DIVQ, p).unwrap();
        assert_eq!(host.as_f64().len(), 512);
        assert_eq!(dw.patch_entries(), 0);
        assert!(dw.take_patch_to_host(DIVQ, p).is_none());
        // D2H was metered once.
        assert_eq!(dw.device().counters().d2h_transfers, 1);
    }

    #[test]
    fn level_db_uploads_once_and_shares() {
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let mut calls = 0;
        let a = dw
            .ensure_level(ABSKG, 0, || {
                calls += 1;
                field(16, 0.9)
            })
            .unwrap();
        let b = dw.ensure_level(ABSKG, 0, || panic!("second upload")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "tasks must share one device copy");
        assert_eq!(calls, 1);
        assert_eq!(dw.device().counters().h2d_transfers, 1);
        let bytes = 16usize.pow(3) * 8;
        assert_eq!(dw.device().counters().h2d_bytes, bytes as u64);
        assert_eq!(dw.device().used(), bytes);
    }

    #[test]
    fn disabled_level_db_duplicates_copies() {
        let dw = GpuDataWarehouse::with_level_db(GpuDevice::k20x(), false);
        let a = dw.ensure_level(ABSKG, 0, || field(16, 0.9)).unwrap();
        let b = dw.ensure_level(ABSKG, 0, || field(16, 0.9)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(dw.device().counters().h2d_transfers, 2);
        assert_eq!(dw.device().used(), 2 * 16usize.pow(3) * 8);
    }

    #[test]
    fn memory_released_when_last_handle_drops() {
        let device = GpuDevice::k20x();
        let dw = GpuDataWarehouse::new(device.clone());
        let v = dw.ensure_level(ABSKG, 1, || field(8, 0.1)).unwrap();
        assert!(device.used() > 0);
        dw.clear_level_db();
        assert!(device.used() > 0, "task still holds a handle");
        drop(v);
        assert_eq!(device.used(), 0);
    }

    #[test]
    fn capacity_exhaustion_is_a_clean_error() {
        // A device too small for the coarse field: the failure mode the
        // level DB avoids at scale. With an empty warehouse there is
        // nothing to evict, so eviction changes nothing here.
        let device = GpuDevice::with_capacity("tiny", 1024);
        let dw = GpuDataWarehouse::new(device);
        let err = dw.ensure_level(ABSKG, 0, || field(8, 0.0)).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
    }

    #[test]
    fn level_db_memory_bound_vs_unbounded() {
        // With N concurrent patch tasks needing the same coarse field, the
        // level DB holds device memory constant; without it, memory scales
        // with N — the paper's core argument.
        let field_bytes = 16usize.pow(3) * 8;
        let with = GpuDataWarehouse::new(GpuDevice::k20x());
        let without = GpuDataWarehouse::with_level_db(GpuDevice::k20x(), false);
        let mut with_handles = Vec::new();
        let mut without_handles = Vec::new();
        for _task in 0..32 {
            with_handles.push(with.ensure_level(ABSKG, 0, || field(16, 0.9)).unwrap());
            without_handles.push(without.ensure_level(ABSKG, 0, || field(16, 0.9)).unwrap());
        }
        assert_eq!(with.device().used(), field_bytes);
        assert_eq!(without.device().used(), 32 * field_bytes);
        assert_eq!(with.device().counters().h2d_bytes, field_bytes as u64);
        assert_eq!(without.device().counters().h2d_bytes, (32 * field_bytes) as u64);
    }

    #[test]
    fn concurrent_ensure_level_single_upload() {
        let dw = Arc::new(GpuDataWarehouse::new(GpuDevice::k20x()));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let dw = dw.clone();
                s.spawn(move || {
                    let v = dw.ensure_level(ABSKG, 0, || field(16, 0.5)).unwrap();
                    assert_eq!(v.data().as_f64().len(), 4096);
                });
            }
        });
        assert_eq!(dw.device().counters().h2d_transfers, 1, "exactly one upload");
    }

    #[test]
    #[should_panic(expected = "requested f64")]
    fn type_mismatch_panics() {
        let d = DeviceData::U8(CcVariable::filled(Region::cube(2), 1u8));
        d.as_f64();
    }

    #[test]
    fn fresh_replica_persists_across_timesteps_when_unchanged() {
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let a = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        assert_eq!(dw.device().counters().h2d_transfers, 1);
        // Same step: producer must not run again.
        let b = dw.ensure_level_fresh(ABSKG, 0, || panic!("fresh entry")).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Next step, identical host data: revalidation, no transfer.
        dw.begin_timestep();
        assert_eq!(dw.level_entry_epoch(ABSKG, 0), Some(0), "stale until revalidated");
        let c = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        assert!(Arc::ptr_eq(&a, &c), "unchanged replica is kept");
        assert_eq!(dw.device().counters().h2d_transfers, 1, "no second upload");
        assert_eq!(dw.level_entry_epoch(ABSKG, 0), Some(1));
        // And within the new step it is trusted without the producer.
        let d = dw.ensure_level_fresh(ABSKG, 0, || panic!("revalidated")).unwrap();
        assert!(Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn changed_replica_reuploads_only_changed_bytes() {
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let full = 16usize.pow(3) * 8;
        let v = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        drop(v);
        dw.begin_timestep();
        // One cell changed between steps.
        let _ = dw
            .ensure_level_fresh(ABSKG, 0, || {
                let mut f = CcVariable::filled(Region::cube(16), 0.9);
                f[uintah_grid::IntVector::ZERO] = 1.1;
                DeviceData::F64(f)
            })
            .unwrap();
        assert_eq!(dw.device().counters().h2d_transfers, 2);
        assert_eq!(dw.device().counters().h2d_bytes, (full + 8) as u64, "8-byte diff upload");
        assert_eq!(dw.device().used(), full, "in-place overwrite, no extra memory");
    }

    #[test]
    fn changed_replica_with_live_handles_is_replaced_not_clobbered() {
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let old = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.5)).unwrap();
        dw.begin_timestep();
        let new = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.7)).unwrap();
        assert!(!Arc::ptr_eq(&old, &new), "live handle keeps old bytes");
        assert_eq!(old.data().as_f64()[uintah_grid::IntVector::ZERO], 0.5);
        assert_eq!(new.data().as_f64()[uintah_grid::IntVector::ZERO], 0.7);
        let field_bytes = 8usize.pow(3) * 8;
        assert_eq!(dw.device().used(), 2 * field_bytes, "both copies resident");
        drop(old);
        assert_eq!(dw.device().used(), field_bytes, "old copy released on drop");
    }

    #[test]
    fn oom_mid_revalidate_leaves_counters_and_epoch_untouched() {
        // Regression: the replace path used to meter record_h2d(changed)
        // *before* try_reserve, so an OOM inflated the H2D counters for a
        // transfer that never happened and left the entry stamped stale
        // after metering. Counters must be bit-identical before/after a
        // failed revalidate (alloc_failures aside). The live handle also
        // pins the entry against eviction, so the LRU policy cannot save
        // the allocation.
        let field_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("tiny", field_bytes + 512);
        let dw = GpuDataWarehouse::new(device.clone());
        let old = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.5)).unwrap();
        let before = device.counters();
        dw.begin_timestep();
        // The live handle forces the replace path; no room left → OOM.
        let err = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.7)).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        let after = device.counters();
        assert_eq!(after.h2d_bytes, before.h2d_bytes, "no phantom H2D bytes on OOM");
        assert_eq!(after.h2d_transfers, before.h2d_transfers);
        assert_eq!(after.used, before.used);
        assert_eq!(after.alloc_failures, before.alloc_failures + 1);
        assert_eq!(after.evictions, 0, "nothing evictable: the handle is live");
        assert_eq!(
            dw.level_entry_epoch(ABSKG, 0),
            Some(0),
            "entry stays stale after a failed revalidate"
        );
        // The resident replica is untouched and still usable.
        assert_eq!(old.data().as_f64()[uintah_grid::IntVector::ZERO], 0.5);
    }

    #[test]
    fn live_handle_replacement_meters_full_buffer() {
        // A replacement upload moves the whole new buffer across PCIe (the
        // old allocation is pinned by live handles), not just the diff.
        let dw = GpuDataWarehouse::new(GpuDevice::k20x());
        let full = 8u64.pow(3) * 8;
        let old = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.5)).unwrap();
        dw.begin_timestep();
        let _new = dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.7)).unwrap();
        assert_eq!(
            dw.device().counters().h2d_bytes,
            2 * full,
            "replacement meters the full buffer"
        );
        assert_eq!(dw.device().counters().h2d_transfers, 2);
        drop(old);
    }

    #[test]
    fn invalidate_for_regrid_evicts_and_releases() {
        let device = GpuDevice::k20x();
        let dw = GpuDataWarehouse::new(device.clone());
        dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).unwrap();
        dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).unwrap();
        let lvl = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        drop(lvl);
        // An in-flight async drain must be synced before eviction counts.
        let pending = dw.take_patch_to_host_async(DIVQ, PatchId(0)).unwrap();
        let (patches, levels) = dw.invalidate_for_regrid();
        assert_eq!((patches, levels), (1, 1));
        assert!(pending.is_complete(), "drain synced by invalidate");
        drop(pending.wait());
        assert_eq!(dw.patch_entries(), 0);
        assert_eq!(dw.level_entries(), 0);
        assert_eq!(device.used(), 0, "all device memory released");
        assert_eq!(device.counters().d2h_inflight, 0);
        // The next ensure pays a fresh upload — no poisoned cache.
        let before = device.counters().h2d_transfers;
        let _ = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        assert_eq!(device.counters().h2d_transfers, before + 1);
    }

    #[test]
    fn async_take_matches_sync_take_and_releases_on_drain() {
        let device = GpuDevice::k20x();
        let dw = GpuDataWarehouse::new(device.clone());
        let p = PatchId(7);
        dw.put_patch(DIVQ, p, field(8, 2.5)).unwrap();
        let pending = dw.take_patch_to_host_async(DIVQ, p).unwrap();
        assert_eq!(dw.patch_entries(), 0, "entry removed at post time");
        assert_eq!(pending.bytes(), 8usize.pow(3) * 8);
        let (data, drain, _blocked) = pending.wait_timed();
        assert_eq!(data.as_f64()[uintah_grid::IntVector::ZERO], 2.5);
        assert!(drain > Duration::ZERO);
        device.sync_d2h();
        assert_eq!(device.used(), 0, "device memory released when drain completes");
        let c = device.counters();
        assert_eq!(c.d2h_transfers, 1);
        assert_eq!(c.d2h_bytes, 8u64.pow(3) * 8);
        assert!(c.d2h_busy_ns > 0, "engine occupancy metered");
        assert!(dw.take_patch_to_host_async(DIVQ, p).is_none());
    }

    #[test]
    fn sync_fallback_reports_blocked_equals_drain() {
        let dw = GpuDataWarehouse::with_options(GpuDevice::k20x(), true, false);
        assert!(!dw.async_d2h());
        let p = PatchId(1);
        dw.put_patch(DIVQ, p, field(8, 1.0)).unwrap();
        let pending = dw.take_patch_to_host_async(DIVQ, p).unwrap();
        assert!(pending.is_complete(), "inline drain completes at post time");
        assert_eq!(dw.device().used(), 0, "inline drain releases immediately");
        let (data, drain, blocked) = pending.wait_timed();
        assert_eq!(data.as_f64()[uintah_grid::IntVector::ZERO], 1.0);
        assert_eq!(blocked, drain, "no overlap in synchronous mode");
        assert_eq!(dw.device().counters().d2h_inflight, 0);
    }

    #[test]
    fn inline_take_matches_async_counters_exactly() {
        // Regression: the inline fallback used to consume next_stream()
        // without registering the transfer in d2h_streams, so stream/
        // in-flight bookkeeping depended on the async mode. Every counter
        // except engine occupancy (busy_ns is wall-time measured) must now
        // be identical across modes for the same operation sequence.
        let run = |async_d2h: bool| {
            let device = GpuDevice::with_capacity("mode-test", 1 << 20);
            let dw = GpuDataWarehouse::with_options(device.clone(), true, async_d2h);
            for p in 0..4u32 {
                dw.put_patch(DIVQ, PatchId(p), field(8, p as f64)).unwrap();
                let pending = dw.take_patch_to_host_async(DIVQ, PatchId(p)).unwrap();
                let got = pending.wait();
                assert_eq!(got.as_f64()[uintah_grid::IntVector::ZERO], p as f64);
            }
            dw.sync_d2h_all();
            let mut c = device.counters();
            c.h2d_busy_ns = 0;
            c.d2h_busy_ns = 0;
            c
        };
        assert_eq!(run(true), run(false), "counters must be mode-independent");
    }

    #[test]
    fn disabled_level_db_pays_full_upload_every_step() {
        let dw = GpuDataWarehouse::with_level_db(GpuDevice::k20x(), false);
        let a = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        dw.begin_timestep();
        let b = dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(dw.device().counters().h2d_transfers, 2, "no persistence without the DB");
        assert_eq!(dw.device().counters().h2d_bytes, 2 * 16u64.pow(3) * 8);
    }

    // ---- eviction / spill / re-upload ----------------------------------

    #[test]
    fn lru_eviction_spills_cold_patch_and_reuploads_on_access() {
        let patch_bytes = 8usize.pow(3) * 8; // 4096
        // Room for two patches, not three.
        let device = GpuDevice::with_capacity("small", 2 * patch_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        dw.put_patch(DIVQ, PatchId(0), field(8, 10.0)).map(drop).unwrap();
        dw.put_patch(DIVQ, PatchId(1), field(8, 11.0)).map(drop).unwrap();
        // Touch patch 0 so patch 1 is the LRU victim.
        dw.get_patch(DIVQ, PatchId(0)).map(drop).unwrap();
        // Third put forces one eviction.
        dw.put_patch(DIVQ, PatchId(2), field(8, 12.0)).map(drop).unwrap();
        let c = device.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.evicted_bytes, patch_bytes as u64);
        assert_eq!(c.spills, 1);
        assert_eq!(c.spilled_bytes, patch_bytes as u64);
        assert_eq!(dw.spill_entries(), 1);
        assert_eq!(dw.spill_bytes(), patch_bytes);
        assert!(dw.get_patch(DIVQ, PatchId(0)).is_some(), "recently-used survives");
        assert_eq!(dw.patch_entries(), 2);
        // Accessing the victim re-uploads it transparently — same bytes.
        let v = dw.get_patch(DIVQ, PatchId(1)).expect("spilled patch comes back");
        assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], 11.0);
        let c = device.counters();
        assert_eq!(c.reuploads, 1);
        assert_eq!(c.reuploads_bytes, patch_bytes as u64);
        assert_eq!(c.evictions, 2, "the re-upload itself evicted another entry");
        assert_eq!(dw.spill_entries(), 1, "patch 0 or 2 spilled to make room");
        assert_eq!(device.counters().release_underflows, 0);
        device.validate_allocator().unwrap();
    }

    #[test]
    fn level_replicas_evict_without_spill() {
        let field_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("small", field_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.5)).map(drop).unwrap();
        // A patch put that doesn't fit evicts the replica — dropped, not
        // spilled: level data is regenerable from the host warehouse.
        dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).map(drop).unwrap();
        let c = device.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.spills, 0, "level replicas never spill");
        assert_eq!(dw.level_entries(), 0);
        assert_eq!(dw.spill_entries(), 0);
        // The next ensure pays a fresh full upload (which evicts the patch
        // in turn — spilling it, since patches round-trip).
        let before = device.counters().h2d_transfers;
        dw.ensure_level_fresh(ABSKG, 0, || field(8, 0.5)).map(drop).unwrap();
        assert_eq!(device.counters().h2d_transfers, before + 1);
        assert_eq!(device.counters().spills, 1);
        assert_eq!(dw.spill_entries(), 1);
        device.validate_allocator().unwrap();
    }

    #[test]
    fn live_handles_are_never_evicted() {
        let patch_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("small", patch_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        let held = dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).unwrap();
        // The held Arc pins the only resident entry: OOM, not a stale serve.
        let err = dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        assert_eq!(device.counters().evictions, 0);
        assert_eq!(held.data().as_f64()[uintah_grid::IntVector::ZERO], 1.0);
        drop(held);
        // Unpinned, the entry is a legal victim.
        dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).map(drop).unwrap();
        assert_eq!(device.counters().evictions, 1);
        device.validate_allocator().unwrap();
    }

    #[test]
    fn eviction_disabled_fails_hard_at_capacity() {
        let patch_bytes = 8usize.pow(3) * 8;
        let fleet = DeviceFleet::with_capacity(1, "small", patch_bytes + 100);
        let dw = GpuDataWarehouse::with_fleet_opts(fleet, true, true, false);
        assert!(!dw.eviction_enabled());
        dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).map(drop).unwrap();
        let err = dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        assert_eq!(dw.device().counters().evictions, 0);
        assert_eq!(dw.spill_entries(), 0);
    }

    #[test]
    fn spilled_patch_served_by_take_without_new_transfer() {
        let patch_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("small", patch_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        dw.put_patch(DIVQ, PatchId(0), field(8, 5.0)).map(drop).unwrap();
        dw.put_patch(DIVQ, PatchId(1), field(8, 6.0)).map(drop).unwrap(); // evicts 0
        let d2h_after_spill = device.counters().d2h_transfers;
        assert_eq!(device.counters().spills, 1);
        // Synchronous take: served straight from the spill map.
        let data = dw.take_patch_to_host(DIVQ, PatchId(0)).expect("spilled data served");
        assert_eq!(data.as_f64()[uintah_grid::IntVector::ZERO], 5.0);
        assert_eq!(
            device.counters().d2h_transfers,
            d2h_after_spill,
            "bytes already crossed PCIe at eviction time"
        );
        assert_eq!(dw.spill_entries(), 0);
        // Async take of a spilled variable: an already-complete handle.
        dw.put_patch(DIVQ, PatchId(2), field(8, 7.0)).map(drop).unwrap(); // evicts 1
        let pending = dw.take_patch_to_host_async(DIVQ, PatchId(1)).expect("spilled");
        assert!(pending.is_complete());
        let (data, drain, blocked) = pending.wait_timed();
        assert_eq!(data.as_f64()[uintah_grid::IntVector::ZERO], 6.0);
        assert_eq!(drain, Duration::ZERO);
        assert_eq!(blocked, Duration::ZERO);
        device.validate_allocator().unwrap();
    }

    #[test]
    fn drop_patch_clears_spilled_copies() {
        let patch_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("small", patch_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).map(drop).unwrap();
        dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).map(drop).unwrap(); // spills 0
        assert_eq!(dw.spill_entries(), 1);
        dw.drop_patch(DIVQ, PatchId(0));
        assert_eq!(dw.spill_entries(), 0);
        assert!(dw.get_patch(DIVQ, PatchId(0)).is_none(), "dropped, not resurrected");
    }

    #[test]
    fn regrid_invalidate_clears_spill_map() {
        let patch_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("small", patch_bytes + 100);
        let dw = GpuDataWarehouse::new(device.clone());
        dw.put_patch(DIVQ, PatchId(0), field(8, 1.0)).map(drop).unwrap();
        dw.put_patch(DIVQ, PatchId(1), field(8, 2.0)).map(drop).unwrap(); // spills 0
        assert_eq!(dw.spill_entries(), 1);
        let (patches, _levels) = dw.invalidate_for_regrid();
        assert_eq!(patches, 1, "one resident entry evicted");
        assert_eq!(dw.spill_entries(), 0, "pre-regrid spill data is poison");
        assert_eq!(device.used(), 0);
        device.validate_allocator().unwrap();
    }

    // ---- fleet routing -------------------------------------------------

    #[test]
    fn fleet_routes_patches_to_home_devices() {
        let fleet = DeviceFleet::with_capacity(4, "test", 1 << 30);
        let dw = GpuDataWarehouse::with_fleet(fleet, true, true);
        assert_eq!(dw.num_devices(), 4);
        // Put 32 patches; each must land on its sticky home device and be
        // visible only there.
        for p in 0..32u32 {
            dw.put_patch(DIVQ, PatchId(p), field(4, p as f64)).unwrap();
        }
        for p in 0..32u32 {
            let home = dw.device_for_patch(PatchId(p));
            assert_eq!(home, dw.fleet().sticky_device(PatchId(p)));
            let v = dw.get_patch(DIVQ, PatchId(p)).unwrap();
            assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], p as f64);
        }
        let per_dev: Vec<usize> = (0..4).map(|d| dw.patch_entries_on(d)).collect();
        assert_eq!(per_dev.iter().sum::<usize>(), 32);
        assert!(per_dev.iter().all(|&n| n > 0), "all devices used: {per_dev:?}");
        // Memory is metered on the owning device only.
        let used: Vec<usize> = dw.fleet().devices().iter().map(|d| d.used()).collect();
        let patch_bytes = 4usize.pow(3) * 8;
        for (d, &n) in per_dev.iter().enumerate() {
            assert_eq!(used[d], n * patch_bytes, "device {d} meters its own patches");
        }
    }

    #[test]
    fn fleet_level_replicas_are_per_device() {
        let fleet = DeviceFleet::with_capacity(2, "test", 1 << 30);
        let dw = GpuDataWarehouse::with_fleet(fleet, true, true);
        let a0 = dw.ensure_level_fresh_on(0, ABSKG, 0, || field(16, 0.9)).unwrap();
        let a1 = dw.ensure_level_fresh_on(1, ABSKG, 0, || field(16, 0.9)).unwrap();
        assert!(!Arc::ptr_eq(&a0, &a1), "each device holds its own replica");
        // Each device paid exactly one upload; sharing within a device holds.
        let c = dw.counters_per_device();
        assert_eq!(c[0].h2d_transfers, 1);
        assert_eq!(c[1].h2d_transfers, 1);
        let b0 = dw.ensure_level_fresh_on(0, ABSKG, 0, || panic!("resident on 0")).unwrap();
        assert!(Arc::ptr_eq(&a0, &b0));
        assert_eq!(dw.level_entries_on(0), 1);
        assert_eq!(dw.level_entries_on(1), 1);
        assert_eq!(dw.level_entries(), 2);
        // Revalidation is independent per device.
        dw.begin_timestep();
        let c0 = dw.ensure_level_fresh_on(0, ABSKG, 0, || field(16, 0.9)).unwrap();
        assert!(Arc::ptr_eq(&a0, &c0));
        assert_eq!(dw.level_entry_epoch_on(0, ABSKG, 0), Some(1));
        assert_eq!(dw.level_entry_epoch_on(1, ABSKG, 0), Some(0), "device 1 not yet revalidated");
    }

    #[test]
    fn fleet_targeted_regrid_eviction_spares_other_devices() {
        let fleet = DeviceFleet::with_capacity(3, "test", 1 << 30);
        let dw = GpuDataWarehouse::with_fleet(fleet, true, true);
        for d in 0..3 {
            dw.ensure_level_fresh_on(d, ABSKG, 0, || field(8, 0.5)).map(drop).unwrap();
        }
        let (p, l) = dw.invalidate_for_regrid_on(&[1]);
        assert_eq!((p, l), (0, 1));
        assert_eq!(dw.level_entries_on(0), 1, "device 0 replica survives");
        assert_eq!(dw.level_entries_on(1), 0, "device 1 evicted");
        assert_eq!(dw.level_entries_on(2), 1, "device 2 replica survives");
        assert_eq!(dw.device_at(1).used(), 0);
        assert!(dw.device_at(0).used() > 0);
    }

    #[test]
    fn affinity_override_rehomes_patches() {
        let fleet = DeviceFleet::with_capacity(2, "test", 1 << 30);
        let dw = GpuDataWarehouse::with_fleet(fleet, true, true);
        // Find a patch whose sticky home is device 1, then pin it to 0.
        let p = (0..64u32)
            .map(PatchId)
            .find(|&p| dw.fleet().sticky_device(p) == 1)
            .expect("some patch hashes to device 1");
        dw.set_affinity(&[(p, 0)]);
        assert_eq!(dw.device_for_patch(p), 0);
        dw.put_patch(DIVQ, p, field(4, 3.0)).unwrap();
        assert_eq!(dw.patch_entries_on(0), 1);
        assert_eq!(dw.patch_entries_on(1), 0);
        assert!(dw.device_at(0).used() > 0);
        assert_eq!(dw.device_at(1).used(), 0);
        // Take routes through the same override → drains device 0's engine.
        let _ = dw.take_patch_to_host(DIVQ, p).unwrap();
        assert_eq!(dw.counters_per_device()[0].d2h_transfers, 1);
        assert_eq!(dw.counters_per_device()[1].d2h_transfers, 0);
        // Clearing the overrides restores the sticky home.
        dw.set_affinity(&[]);
        assert_eq!(dw.affinity_overrides(), 0);
        assert_eq!(dw.device_for_patch(p), 1);
    }

    #[test]
    fn fleet_async_drains_use_home_device_engines() {
        let fleet = DeviceFleet::with_capacity(2, "test", 1 << 30);
        let dw = GpuDataWarehouse::with_fleet(fleet, true, true);
        let p0 = (0..64u32).map(PatchId).find(|&p| dw.device_for_patch(p) == 0).unwrap();
        let p1 = (0..64u32).map(PatchId).find(|&p| dw.device_for_patch(p) == 1).unwrap();
        dw.put_patch(DIVQ, p0, field(8, 1.0)).unwrap();
        dw.put_patch(DIVQ, p1, field(8, 2.0)).unwrap();
        let h0 = dw.take_patch_to_host_async(DIVQ, p0).unwrap();
        let h1 = dw.take_patch_to_host_async(DIVQ, p1).unwrap();
        assert_eq!(h0.wait().as_f64()[uintah_grid::IntVector::ZERO], 1.0);
        assert_eq!(h1.wait().as_f64()[uintah_grid::IntVector::ZERO], 2.0);
        dw.sync_d2h_all();
        let c = dw.counters_per_device();
        assert_eq!(c[0].d2h_transfers, 1, "patch 0 drained on device 0's engine");
        assert_eq!(c[1].d2h_transfers, 1, "patch 1 drained on device 1's engine");
        assert_eq!(c[0].d2h_inflight, 0);
        assert_eq!(c[1].d2h_inflight, 0);
        assert_eq!(dw.fleet().total_used(), 0, "no leaked bytes on any device");
    }

    fn dw_with_h2d(async_h2d: bool) -> GpuDataWarehouse {
        GpuDataWarehouse::with_fleet_full(
            DeviceFleet::single(GpuDevice::k20x()),
            true,
            true,
            async_h2d,
            true,
        )
    }

    #[test]
    fn put_patch_async_materializes_on_first_get() {
        let dw = dw_with_h2d(true);
        let p = PatchId(7);
        let data = field(8, 4.25);
        let h = dw.put_patch_async(DIVQ, p, &data).unwrap();
        assert_eq!(h.bytes(), 8usize.pow(3) * 8);
        assert_eq!(dw.pending_uploads(), 1);
        assert_eq!(dw.patch_entries(), 0, "not in the DB until consumed");
        // The upload was metered at post time, on the engine timeline.
        assert_eq!(dw.device().counters().h2d_transfers, 1);
        let v = dw.get_patch(DIVQ, p).expect("materializes the posted upload");
        assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], 4.25);
        assert_eq!(dw.pending_uploads(), 0);
        assert_eq!(dw.patch_entries(), 1);
        // No second transfer: the get consumed the posted burst.
        dw.sync_h2d_all();
        let c = dw.device().counters();
        assert_eq!(c.h2d_transfers, 1);
        assert_eq!(c.h2d_inflight, 0);
        // The handle can also be waited directly and shares the same var.
        let (hv, _upload, _blocked) = h.wait_timed();
        assert!(Arc::ptr_eq(&hv, &v));
    }

    #[test]
    fn inline_upload_matches_async_counters_exactly() {
        // The synchronous fallback must leave the device meters in exactly
        // the state the posted path does once both quiesce: same transfer
        // counts, bytes, in-flight, streams — mode only moves wall-time
        // buckets (busy/wait/overlap), which are zeroed for the comparison.
        let run = |async_h2d: bool| {
            let dw = dw_with_h2d(async_h2d);
            let p = PatchId(3);
            let h = dw.put_patch_async(DIVQ, p, &field(8, 1.5)).unwrap();
            assert_eq!(h.inline, !async_h2d);
            let v = dw.get_patch(DIVQ, p).unwrap();
            assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], 1.5);
            drop(v);
            let lvl = dw.prefetch_level_on(0, ABSKG, 0, &field(16, 0.9));
            assert!(lvl, "missing replica: prediction posted");
            dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).map(drop).unwrap();
            dw.sync_h2d_all();
            let mut c = dw.device().counters();
            c.h2d_busy_ns = 0;
            c.d2h_busy_ns = 0;
            c.h2d_wait_ns = 0;
            c.h2d_overlap_ns = 0;
            c
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn inline_upload_charges_full_wall_and_zero_overlap() {
        let dw = dw_with_h2d(false);
        let h = dw.put_patch_async(DIVQ, PatchId(1), &field(8, 2.0)).unwrap();
        assert!(h.is_complete(), "inline post completes before returning");
        let c = dw.device().counters();
        assert_eq!(c.h2d_overlap_ns, 0, "nothing is hidden in sync mode");
        assert_eq!(c.h2d_inflight, 0);
        let wait_at_post = c.h2d_wait_ns;
        // Consuming an inline upload adds no further stall.
        dw.get_patch(DIVQ, PatchId(1)).unwrap();
        assert_eq!(dw.device().counters().h2d_wait_ns, wait_at_post);
    }

    #[test]
    fn prefetch_spill_reuploads_posts_coalesced_burst() {
        let dw = dw_with_h2d(true);
        let device = dw.device().clone();
        let patches = [PatchId(0), PatchId(1), PatchId(2)];
        for (i, &p) in patches.iter().enumerate() {
            dw.put_patch(DIVQ, p, field(8, i as f64)).unwrap();
        }
        // Force everything out to the host spill map.
        while {
            let mut st = dw.stores[0].state.lock();
            GpuDataWarehouse::evict_one(&device, &mut st)
        } {}
        assert_eq!(dw.spill_entries(), 3);
        assert_eq!(dw.device().used(), 0);
        let before = dw.device().counters();
        assert_eq!(dw.prefetch_spill_reuploads(), 3);
        assert_eq!(dw.spill_entries(), 0);
        assert_eq!(dw.pending_uploads(), 3);
        let after = dw.device().counters();
        assert_eq!(
            after.h2d_transfers,
            before.h2d_transfers + 1,
            "three re-uploads coalesce into one staged burst"
        );
        assert_eq!(after.reuploads, before.reuploads + 3);
        // Consumers see the exact spilled bytes, no additional transfer.
        for (i, &p) in patches.iter().enumerate() {
            let v = dw.get_patch(DIVQ, p).unwrap();
            assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], i as f64);
        }
        dw.sync_h2d_all();
        assert_eq!(dw.device().counters().h2d_transfers, before.h2d_transfers + 1);
        // Burst buffers retired into the staging pool for the next post.
        assert!(dw.staging_pooled_bytes() > 0);
    }

    #[test]
    fn regrid_cancels_posted_uploads_not_installed() {
        let dw = dw_with_h2d(true);
        let p = PatchId(9);
        let _h = dw.put_patch_async(DIVQ, p, &field(8, 5.0)).unwrap();
        dw.prefetch_level_on(0, ABSKG, 0, &field(16, 0.9));
        assert_eq!(dw.pending_uploads(), 2);
        dw.invalidate_for_regrid();
        assert_eq!(dw.pending_uploads(), 0, "in-flight uploads canceled");
        assert_eq!(dw.patch_entries(), 0);
        assert_eq!(dw.level_entries(), 0);
        assert!(dw.get_patch(DIVQ, p).is_none(), "canceled upload is never served");
        // The canceled patch burst's block frees once the external handle
        // drops; the level prediction (no external handle) freed already.
        drop(_h);
        assert_eq!(dw.device().used(), 0, "no leaked device bytes after cancel");
        assert_eq!(dw.device().counters().release_underflows, 0);
    }

    #[test]
    fn prefetch_level_confirmed_prediction_installs_without_new_transfer() {
        let dw = dw_with_h2d(true);
        dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).map(drop).unwrap();
        dw.begin_timestep();
        // Step close: post the predicted next-step replica (changed data).
        assert!(dw.prefetch_level_on(0, ABSKG, 0, &field(16, 1.1)));
        let transfers_after_post = dw.device().counters().h2d_transfers;
        // Next step's consumer produces the same data → the prediction is
        // verified bit-for-bit and installed with no further transfer.
        let v = dw.ensure_level_fresh(ABSKG, 0, || field(16, 1.1)).unwrap();
        assert_eq!(v.data().as_f64()[uintah_grid::IntVector::ZERO], 1.1);
        dw.sync_h2d_all();
        assert_eq!(dw.device().counters().h2d_transfers, transfers_after_post);
        assert_eq!(dw.pending_uploads(), 0);
        assert_eq!(dw.level_entry_epoch(ABSKG, 0), Some(1));
        // An unchanged resident replica posts nothing at all.
        dw.begin_timestep();
        assert!(!dw.prefetch_level_on(0, ABSKG, 0, &field(16, 1.1)));
    }

    #[test]
    fn prefetch_level_mispredicted_falls_back_bit_identical() {
        let dw = dw_with_h2d(true);
        dw.ensure_level_fresh(ABSKG, 0, || field(16, 0.9)).map(drop).unwrap();
        dw.begin_timestep();
        // A wrong prediction: the burst is wasted, never trusted.
        assert!(dw.prefetch_level_on(0, ABSKG, 0, &field(16, 7.7)));
        let v = dw.ensure_level_fresh(ABSKG, 0, || field(16, 1.1)).unwrap();
        assert_eq!(
            v.data().as_f64()[uintah_grid::IntVector::ZERO],
            1.1,
            "producer output wins over the misprediction"
        );
        assert_eq!(dw.pending_uploads(), 0);
        dw.sync_h2d_all();
        drop(v);
        dw.clear_level_db();
        assert_eq!(dw.device().used(), 0, "mispredicted bytes released");
        assert_eq!(dw.device().counters().release_underflows, 0);
    }

    #[test]
    fn staging_pool_recycles_upload_buffers() {
        let dw = dw_with_h2d(true);
        let data = field(8, 1.0);
        dw.put_patch_async(DIVQ, PatchId(0), &data).unwrap();
        dw.get_patch(DIVQ, PatchId(0)).map(drop).unwrap();
        dw.sync_h2d_all();
        let hits_before = dw.staging_reuse_hits();
        assert!(dw.staging_pooled_bytes() > 0, "first burst parked its buffer");
        // Same-shaped posts reuse the parked buffer instead of allocating.
        for i in 1..5u32 {
            dw.put_patch_async(DIVQ, PatchId(i), &data).unwrap();
            dw.get_patch(DIVQ, PatchId(i)).map(drop).unwrap();
            dw.sync_h2d_all();
        }
        assert!(dw.staging_reuse_hits() >= hits_before + 4);
    }

    #[test]
    fn allocator_pressure_cancels_prefetch_and_respills() {
        // Pending uploads outrank nothing — a demand allocation cancels
        // them: patch bytes re-spill to the host (they may be the only
        // copy), level predictions drop. The demand allocation succeeds.
        let field_bytes = 8usize.pow(3) * 8;
        let device = GpuDevice::with_capacity("tiny", field_bytes + 512);
        let dw = GpuDataWarehouse::with_fleet_full(
            DeviceFleet::single(device),
            true,
            true,
            true,
            true,
        );
        let h = dw.put_patch_async(DIVQ, PatchId(0), &field(8, 3.5)).unwrap();
        drop(h); // no external pin
        assert_eq!(dw.pending_uploads(), 1);
        // Demand allocation for a second patch: nothing evictable in the
        // DBs, so the pending upload is canceled and its bytes re-spilled.
        dw.put_patch(DIVQ, PatchId(1), field(8, 9.0)).unwrap();
        assert_eq!(dw.pending_uploads(), 0);
        assert_eq!(dw.spill_entries(), 1, "canceled upload re-spilled, not lost");
        // Both variables still serve their exact bytes.
        let v1 = dw.get_patch(DIVQ, PatchId(1)).unwrap();
        assert_eq!(v1.data().as_f64()[uintah_grid::IntVector::ZERO], 9.0);
        drop(v1);
        dw.drop_patch(DIVQ, PatchId(1));
        let v0 = dw.get_patch(DIVQ, PatchId(0)).unwrap();
        assert_eq!(v0.data().as_f64()[uintah_grid::IntVector::ZERO], 3.5);
    }
}

#[cfg(test)]
mod repro_deadlock {
    use super::*;
    use crate::device::GpuDevice;
    use uintah_grid::{CcVariable, IntVector, Region};

    fn field(n: i32, v: f64) -> DeviceData {
        let r = Region::new(IntVector::ZERO, IntVector::new(n, n, n));
        DeviceData::F64(CcVariable::filled(r, v))
    }

    #[test]
    fn prefetch_spill_reuploads_under_pressure_does_not_hang() {
        let field_bytes = 8usize.pow(3) * 8;
        // Room for exactly two fields: the third re-upload hits the
        // allocator cancel path while this batch's first two entries are
        // pending but not yet posted.
        let device = GpuDevice::with_capacity("tiny", field_bytes * 2 + 256);
        let dw = GpuDataWarehouse::with_fleet_full(
            DeviceFleet::single(device.clone()),
            true,
            true,
            true,
            true,
        );
        for i in 0..3u32 {
            dw.put_patch(VarLabel::DivQ, PatchId(i), field(8, i as f64)).unwrap();
        }
        while {
            let mut st = dw.stores[0].state.lock();
            GpuDataWarehouse::evict_one(&device, &mut st)
        } {}
        assert_eq!(dw.spill_entries(), 3);
        let (tx, rx) = std::sync::mpsc::channel();
        let dw2 = std::sync::Arc::new(dw);
        let dwc = std::sync::Arc::clone(&dw2);
        std::thread::spawn(move || {
            let n = dwc.prefetch_spill_reuploads();
            tx.send(n).unwrap();
        });
        let n = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("prefetch_spill_reuploads deadlocked");
        assert!(n <= 3);
    }
}
