//! Simulated accelerator + GPU DataWarehouse (paper contribution ii).
//!
//! The paper's GPUs are NVIDIA K20X: 6 GB of device global memory, two copy
//! engines (one per PCIe direction) and support for concurrent kernels via
//! CUDA streams. The binding constraint for multi-level RMCRT is *memory*:
//! the coarse, whole-domain radiative properties (`abskg`, `sigmaT4`,
//! `cellType`) must be resident for every patch task, and the original
//! per-patch DataWarehouse copies blew the 6 GB budget and the PCIe bus.
//!
//! This crate implements the design for real, substituting a host-side
//! device model for CUDA (see DESIGN.md §2):
//!
//! * [`GpuDevice`] — device-memory accounting against a byte capacity,
//!   per-direction copy-engine *timelines* (transfer/byte/occupancy metering
//!   plus a real worker thread draining posted D2H copies asynchronously),
//!   kernel-launch counters and stream handles;
//! * [`GpuDataWarehouse`] — the per-device variable store with a *patch
//!   database* and the paper's new *level database*, which keeps exactly one
//!   shared copy of each per-level variable that all concurrent patch tasks
//!   reference. Disabling the level DB (the E4 ablation) makes every patch
//!   task materialize its own copy, reproducing the "before" memory and PCIe
//!   behaviour;
//! * [`DeviceFleet`] — a rank's set of N devices (Summit-style fat nodes),
//!   each with its own capacity meter, copy-engine timelines, and — inside
//!   the warehouse — its own patch and level databases, scheduled via
//!   [`GpuAffinity`] (sticky patch-id hash or measured-cost LPT balancing).

pub mod device;
pub mod dw;
pub mod fleet;

pub use device::{CopyEngineStats, DeviceBlock, DeviceCounters, GpuDevice, GpuError, Stream};
pub use dw::{DeviceData, DeviceVar, GpuDataWarehouse, PendingD2H, PendingH2D};
pub use fleet::{lpt_assign, sticky_device, DeviceFleet, DeviceId, GpuAffinity};
