//! Discrete-event simulation of one radiation timestep on the modeled
//! machine, driven by the real per-rank census.

use crate::census::{max_census, RankCensus};
use crate::machine::{MachineParams, StoreModel};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use uintah_grid::{DistributionPolicy, Grid, PatchDistribution};
use uintah_runtime::CalibrationSnapshot;

/// Ordered f64 for the resource heaps.
#[derive(PartialEq, PartialOrd)]
struct F(f64);
impl Eq for F {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for F {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("NaN time")
    }
}

/// Phase breakdown of the modeled timestep (seconds).
#[derive(Clone, Copy, Debug, Default)]
pub struct Breakdown {
    /// Property initialization + send posting on the CPU lanes.
    pub props: f64,
    /// All-to-all window exchange: NIC + message processing until the
    /// level replicas are sealed.
    pub comm: f64,
    /// Ray-march phase: GPU staging + kernels + readback in the GPU model,
    /// the threaded host march in [`simulate_timestep_cpu`]. (Formerly
    /// named `gpu`, which mislabeled the CPU mode's march time.)
    pub compute: f64,
}

/// Measured per-patch cost distribution driving the modeled kernel
/// pipeline: relative weights (mean 1.0) sampled from a
/// [`CalibrationSnapshot`]'s per-patch wall costs, so patch-to-patch cost
/// variance measured on the real executor shapes the modeled critical
/// path instead of every kernel costing the analytic uniform amount.
///
/// An empty profile ([`CostProfile::uniform`]) reproduces the uniform
/// analytic model exactly. Weights are stored sorted descending so the
/// profile is a deterministic function of the measured cost *multiset*
/// (scheduler interleaving cannot reorder it). The simulation samples a
/// rank's kernels from the distribution's *quantiles*
/// ([`CostProfile::quantile_weight`]): the SFC load balancer spreads hot
/// spots across ranks, so a GPU holding `n` patches holds a representative
/// sample of the global cost spread, not its head — a rank with many
/// patches reproduces the full multiset, a rank with few gets its
/// mid-quantiles.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostProfile {
    weights: Vec<f64>,
}

impl CostProfile {
    /// The uniform analytic profile: every kernel costs the same.
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Build from raw per-patch costs (any unit; only ratios matter).
    /// Degenerate inputs — empty, or a zero/non-finite total — fall back
    /// to the uniform profile.
    pub fn from_costs(costs: impl IntoIterator<Item = f64>) -> Self {
        let mut w: Vec<f64> = costs.into_iter().filter(|c| c.is_finite() && *c > 0.0).collect();
        let total: f64 = w.iter().sum();
        if w.is_empty() || total <= 0.0 {
            return Self::uniform();
        }
        let mean = total / w.len() as f64;
        for c in &mut w {
            *c /= mean;
        }
        w.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
        Self { weights: w }
    }

    /// Build from the measured per-patch wall costs of a calibration run.
    pub fn from_snapshot(snap: &CalibrationSnapshot) -> Self {
        Self::from_costs(snap.per_patch.iter().map(|&(_, ns)| ns as f64))
    }

    /// True when this profile reproduces the uniform analytic model.
    pub fn is_uniform(&self) -> bool {
        self.weights.is_empty()
    }

    /// Relative cost weight of kernel `k` (mean 1.0), cycling through the
    /// sorted multiset. Use [`CostProfile::quantile_weight`] when the
    /// total kernel count of the rank is known.
    #[inline]
    pub fn weight(&self, k: usize) -> f64 {
        if self.weights.is_empty() {
            1.0
        } else {
            self.weights[k % self.weights.len()]
        }
    }

    /// Weight of kernel `k` out of `n` on one rank: the mean of the
    /// measured distribution's `k`-th of `n` equal quantile bands. The
    /// band means always average to exactly 1, so a rank's total march
    /// work matches the uniform model for *any* patch count — the
    /// measured spread changes pipeline ordering and serialization, not
    /// total work (the SFC load balancer spreads hot spots across ranks;
    /// what one rank keeps is a representative slice, not the heaviest
    /// patches).
    pub fn quantile_weight(&self, k: usize, n: usize) -> f64 {
        if self.weights.is_empty() || n == 0 {
            return 1.0;
        }
        let len = self.weights.len() as f64;
        let a = k as f64 / n as f64 * len;
        let b = (k as f64 + 1.0) / n as f64 * len;
        (self.cum(b) - self.cum(a)) / (b - a)
    }

    /// Integral of the sorted weights over positions `[0, x)`, each weight
    /// occupying unit length (linear interpolation inside a weight).
    fn cum(&self, x: f64) -> f64 {
        let i = (x as usize).min(self.weights.len());
        let whole: f64 = self.weights[..i].iter().sum();
        let frac = x - i as f64;
        if frac > 0.0 && i < self.weights.len() {
            whole + frac * self.weights[i]
        } else {
            whole
        }
    }

    /// Heaviest/lightest measured patch cost ratio (1.0 when uniform).
    pub fn spread(&self) -> f64 {
        match (self.weights.first(), self.weights.last()) {
            (Some(&max), Some(&min)) if min > 0.0 => max / min,
            _ => 1.0,
        }
    }

    /// Number of distinct measured patch costs backing the profile.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no measured costs back the profile (uniform fallback).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// One point of a strong-scaling curve.
#[derive(Clone, Copy, Debug)]
pub struct ScalingPoint {
    pub gpus: usize,
    pub patch_size: i32,
    /// Modeled time per radiation timestep (s).
    pub time: f64,
    pub breakdown: Breakdown,
    pub census: RankCensus,
}

/// 17 bytes per cell across the 3 property variables (f64+f64+u8).
const PROP_BYTES_PER_CELL: f64 = 17.0 / 3.0;

/// Fraction of per-message CPU work done while *holding* the request-store
/// lock in the mutex-vector design (test-and-dequeue under the lock;
/// packing/unpacking outside). This is the serialized share; the wait-free
/// pool has none. Calibrated so the modeled before/after speedups land in
/// the paper's 2.3–4.4× band (Table I) with 16 worker threads.
const MUTEX_LOCK_FRACTION: f64 = 0.15;

/// Simulate one radiation timestep of the 2-level benchmark on `nranks`
/// nodes (1 GPU each) with the uniform analytic cost model. Campaign
/// callers with a measured [`CostProfile`] use [`simulate_timestep_with`].
pub fn simulate_timestep(
    grid: &Grid,
    nranks: usize,
    halo: i32,
    params: &MachineParams,
    store: StoreModel,
) -> ScalingPoint {
    simulate_timestep_with(grid, nranks, halo, params, store, &CostProfile::uniform())
}

/// Simulate one radiation timestep with a measured per-patch cost
/// distribution: each modeled kernel's march work is scaled by its
/// patch's weight from `profile` (mean 1.0, so total work matches the
/// uniform model and only the *distribution* across the pipeline
/// changes). [`CostProfile::uniform`] reproduces [`simulate_timestep`]
/// exactly.
pub fn simulate_timestep_with(
    grid: &Grid,
    nranks: usize,
    halo: i32,
    params: &MachineParams,
    store: StoreModel,
    profile: &CostProfile,
) -> ScalingPoint {
    let dist = PatchDistribution::new(grid, nranks, DistributionPolicy::MortonSfc);
    let census = max_census(grid, &dist, halo, 16.min(nranks));
    let patch_size = grid.fine_level().patch_size().x;

    // ---- Phase 1: property initialization + send posting ---------------
    let mut lanes: BinaryHeap<Reverse<F>> = (0..params.cpu_threads).map(|_| Reverse(F(0.0))).collect();
    let d_init = census.cells_per_patch as f64 / params.cpu_init_cells_per_s;
    let sends_per_patch = if census.local_fine_patches > 0 {
        census.msgs_sent() as f64 / census.local_fine_patches as f64
    } else {
        0.0
    };
    let w_send = sends_per_patch * params.msg_cpu_cost;
    let mut lock_free = 0.0f64; // the mutex store's single lock
    let mut props_end = 0.0f64;
    let mut patch_done_times = Vec::with_capacity(census.local_fine_patches);
    for _ in 0..census.local_fine_patches {
        let Reverse(F(free)) = lanes.pop().expect("lane");
        let compute_done = free + d_init;
        let lane_done = match store {
            StoreModel::WaitFreePool => compute_done + w_send,
            StoreModel::MutexVector => {
                // The lock-held share of posting serializes; the rest runs
                // on the posting lane.
                lock_free = lock_free.max(compute_done) + w_send * MUTEX_LOCK_FRACTION;
                lock_free + w_send * (1.0 - MUTEX_LOCK_FRACTION)
            }
        };
        patch_done_times.push(lane_done);
        props_end = props_end.max(lane_done);
        lanes.push(Reverse(F(lane_done)));
    }

    // ---- Phase 2: all-to-all arrival + processing -----------------------
    // Remote senders mirror our schedule: their windows depart uniformly
    // over [0, props_end] and serialize through our NIC.
    let m = census.level_msgs_recv;
    let msg_bytes = if m > 0 {
        census.level_cells_recv as f64 / m as f64 * PROP_BYTES_PER_CELL
    } else {
        0.0
    };
    let mut nic_free = 0.0f64;
    let mut gather_done = props_end;
    for i in 0..m {
        let send_time = props_end * (i as f64 + 0.5) / m as f64;
        let arrived = nic_free.max(send_time + params.net_latency) + msg_bytes / params.injection_bw;
        nic_free = arrived;
        // Processing on the CPU lanes; the mutex design additionally
        // serializes the lock-held share of each message.
        let done = match store {
            StoreModel::WaitFreePool => {
                let Reverse(F(free)) = lanes.pop().expect("lane");
                let d = free.max(arrived) + params.msg_cpu_cost;
                lanes.push(Reverse(F(d)));
                d
            }
            StoreModel::MutexVector => {
                lock_free = lock_free.max(arrived) + params.msg_cpu_cost * MUTEX_LOCK_FRACTION;
                let Reverse(F(free)) = lanes.pop().expect("lane");
                let d = free.max(lock_free) + params.msg_cpu_cost * (1.0 - MUTEX_LOCK_FRACTION);
                lanes.push(Reverse(F(d)));
                d
            }
        };
        gather_done = gather_done.max(done);
    }

    // ---- Phase 3: GPU pipeline ------------------------------------------
    // Level replicas cross PCIe once (the level database!), then patch
    // tasks pipeline H2D → kernel → D2H across the two copy engines.
    // All 3 property variables of the whole coarse level: 8+8+1 B/cell.
    let coarse_bytes = census.coarse_level_cells as f64 * 17.0;
    let mut h2d_free = gather_done + coarse_bytes / params.pcie_bw;
    let mut gpu_free = gather_done;
    let mut d2h_free = gather_done;
    let roi_1d = patch_size as f64 + 2.0 * halo as f64;
    let roi_cells = roi_1d.powi(3);
    let coarse_1d = grid.coarsest_level().cell_region().extent().x as f64;
    let steps = params.steps_per_ray(roi_1d, coarse_1d);
    let cells = census.cells_per_patch as f64;
    let kernel_work = cells * params.nrays * steps;
    let mut done = gather_done;
    for k in 0..census.kernels {
        let h2d_dur = roi_cells * PROP_BYTES_PER_CELL * 3.0 / params.pcie_bw;
        let staged = h2d_free + h2d_dur;
        h2d_free = staged;
        // Measured cost distribution: this kernel's march work is its
        // patch's quantile of the measured spread (weight 1.0 when
        // uniform).
        let kernel_dur = params.kernel_launch
            + kernel_work * profile.quantile_weight(k, census.kernels) / params.gpu_throughput(cells);
        let k_end = gpu_free.max(staged) + kernel_dur;
        gpu_free = k_end;
        let out = d2h_free.max(k_end) + cells * 8.0 / params.pcie_bw;
        d2h_free = out;
        done = done.max(out);
    }

    ScalingPoint {
        gpus: nranks,
        patch_size,
        time: done,
        breakdown: Breakdown {
            props: props_end,
            comm: (gather_done - props_end).max(0.0),
            compute: (done - gather_done).max(0.0),
        },
        census,
    }
}

/// Simulate one radiation timestep with the ray march on the node's 16
/// CPU cores instead of the GPU (the paper's predecessor configuration,
/// ref. [5]; no PCIe staging, no kernel-launch overhead, but an
/// order-of-magnitude lower march throughput per node).
pub fn simulate_timestep_cpu(
    grid: &Grid,
    nranks: usize,
    halo: i32,
    params: &MachineParams,
    store: StoreModel,
) -> ScalingPoint {
    // Phases 1 and 2 are identical to the GPU run; recompute them by
    // running the GPU model and replacing the compute phase.
    let gpu_pt = simulate_timestep(grid, nranks, halo, params, store);
    let census = gpu_pt.census;
    let patch_size = grid.fine_level().patch_size().x;
    let gather_done = gpu_pt.breakdown.props + gpu_pt.breakdown.comm;
    let roi_1d = patch_size as f64 + 2.0 * halo as f64;
    let coarse_1d = grid.coarsest_level().cell_region().extent().x as f64;
    let steps = params.steps_per_ray(roi_1d, coarse_1d);
    let work_per_patch = census.cells_per_patch as f64 * params.nrays * steps;
    // CPU RMCRT parallelizes over *cells*, so the node's threads share the
    // total march work regardless of patch count (unlike the GPU pipeline,
    // which is kernel-granular).
    let total_work = census.kernels as f64 * work_per_patch;
    let done = gather_done + total_work / (params.cpu_threads as f64 * params.cpu_cellsteps_per_s);
    ScalingPoint {
        gpus: nranks,
        patch_size,
        time: done,
        breakdown: Breakdown {
            props: gpu_pt.breakdown.props,
            comm: gpu_pt.breakdown.comm,
            compute: (done - gather_done).max(0.0),
        },
        census,
    }
}

/// Sweep a strong-scaling curve over `gpu_counts` with the uniform
/// analytic cost model.
pub fn scaling_curve(
    grid: &Grid,
    gpu_counts: &[usize],
    halo: i32,
    params: &MachineParams,
    store: StoreModel,
) -> Vec<ScalingPoint> {
    scaling_curve_with(grid, gpu_counts, halo, params, store, &CostProfile::uniform())
}

/// Sweep a strong-scaling curve over `gpu_counts` with a measured
/// per-patch cost distribution (see [`simulate_timestep_with`]).
pub fn scaling_curve_with(
    grid: &Grid,
    gpu_counts: &[usize],
    halo: i32,
    params: &MachineParams,
    store: StoreModel,
    profile: &CostProfile,
) -> Vec<ScalingPoint> {
    gpu_counts
        .iter()
        .map(|&n| simulate_timestep_with(grid, n, halo, params, store, profile))
        .collect()
}

/// Strong-scaling efficiency between two points (equation 3 of the paper,
/// relative form): `E = (t_a · n_a) / (t_b · n_b)` for `n_b > n_a`.
pub fn efficiency(a: &ScalingPoint, b: &ScalingPoint) -> f64 {
    (a.time * a.gpus as f64) / (b.time * b.gpus as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::IntVector;

    fn grid(fine: i32, patch: i32) -> Grid {
        Grid::builder()
            .fine_cells(IntVector::splat(fine))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build()
    }

    #[test]
    fn time_decreases_with_more_gpus() {
        let g = grid(256, 16);
        let p = MachineParams::titan();
        let pts = scaling_curve(&g, &[64, 256, 1024], 4, &p, StoreModel::WaitFreePool);
        assert!(pts[0].time > pts[1].time);
        assert!(pts[1].time > pts[2].time);
    }

    #[test]
    fn larger_patches_run_faster_at_fixed_gpus() {
        // Paper §V observation 1: larger patches → more work per kernel →
        // better GPU throughput → lower time. Compare at a GPU count where
        // every patch size still has >= 1 patch per GPU (64 GPUs on the
        // MEDIUM grid), so cells per GPU are identical across the sweep.
        let p = MachineParams::titan();
        let t16 = simulate_timestep(&grid(256, 16), 64, 4, &p, StoreModel::WaitFreePool).time;
        let t32 = simulate_timestep(&grid(256, 32), 64, 4, &p, StoreModel::WaitFreePool).time;
        let t64 = simulate_timestep(&grid(256, 64), 64, 4, &p, StoreModel::WaitFreePool).time;
        assert!(t64 < t32 && t32 < t16, "{t64} {t32} {t16}");
    }

    #[test]
    fn large_problem_efficiency_matches_paper_band() {
        // Paper: LARGE problem, 96% efficiency 4096→8192 GPUs and 89%
        // 4096→16384. Model should land in the same region (>= 80%).
        let g = grid(512, 16);
        let p = MachineParams::titan();
        let pts = scaling_curve(&g, &[4096, 8192, 16384], 4, &p, StoreModel::WaitFreePool);
        let e8 = efficiency(&pts[0], &pts[1]);
        let e16 = efficiency(&pts[0], &pts[2]);
        assert!(e8 > 0.80 && e8 <= 1.02, "4k->8k efficiency {e8}");
        assert!(e16 > 0.70 && e16 <= 1.02, "4k->16k efficiency {e16}");
        assert!(e16 <= e8 + 1e-9, "efficiency cannot improve with scale");
    }

    #[test]
    fn mutex_store_slower_than_waitfree() {
        // Fig. 1: the wait-free pool beats the locked vector on local comm.
        let g = grid(256, 16);
        let p = MachineParams::titan();
        let before = simulate_timestep(&g, 512, 4, &p, StoreModel::MutexVector);
        let after = simulate_timestep(&g, 512, 4, &p, StoreModel::WaitFreePool);
        assert!(
            before.breakdown.comm + before.breakdown.props
                > after.breakdown.comm + after.breakdown.props,
            "before {:?} after {:?}",
            before.breakdown,
            after.breakdown
        );
    }

    #[test]
    fn deterministic() {
        let g = grid(128, 16);
        let p = MachineParams::titan();
        let a = simulate_timestep(&g, 128, 4, &p, StoreModel::WaitFreePool);
        let b = simulate_timestep(&g, 128, 4, &p, StoreModel::WaitFreePool);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn gpu_node_beats_cpu_node() {
        // Per node: 16 Opteron cores vs one K20X on large patches — the
        // GPU wins by roughly the FLOPS ratio once patches fill it.
        let g = grid(256, 64);
        let p = MachineParams::titan();
        let gpu = simulate_timestep(&g, 64, 4, &p, StoreModel::WaitFreePool);
        let cpu = simulate_timestep_cpu(&g, 64, 4, &p, StoreModel::WaitFreePool);
        let speedup = cpu.time / gpu.time;
        assert!(
            speedup > 1.3 && speedup < 10.0,
            "GPU speedup {speedup} out of plausible range"
        );
    }

    #[test]
    fn cpu_mode_has_no_pcie_or_launch_overhead_at_tiny_work() {
        // With very small patches the GPU's fixed overheads bite; the CPU
        // node closes the gap (the motivation for patch-size tuning §V).
        let p = MachineParams::titan();
        let small = grid(128, 16);
        let gpu16 = simulate_timestep(&small, 512, 4, &p, StoreModel::WaitFreePool);
        let cpu16 = simulate_timestep_cpu(&small, 512, 4, &p, StoreModel::WaitFreePool);
        let big = grid(128, 32);
        let gpu32 = simulate_timestep(&big, 64, 4, &p, StoreModel::WaitFreePool);
        let cpu32 = simulate_timestep_cpu(&big, 64, 4, &p, StoreModel::WaitFreePool);
        let speedup_small = cpu16.time / gpu16.time;
        let speedup_big = cpu32.time / gpu32.time;
        assert!(
            speedup_big > speedup_small,
            "bigger patches must increase GPU speedup: {speedup_big} vs {speedup_small}"
        );
    }

    #[test]
    fn uniform_profile_reproduces_analytic_model_exactly() {
        let g = grid(128, 16);
        let p = MachineParams::titan();
        let a = simulate_timestep(&g, 64, 4, &p, StoreModel::WaitFreePool);
        let b = simulate_timestep_with(&g, 64, 4, &p, StoreModel::WaitFreePool, &CostProfile::uniform());
        assert_eq!(a.time.to_bits(), b.time.to_bits());
    }

    #[test]
    fn cost_profile_normalizes_to_mean_one_and_sorts() {
        let p = CostProfile::from_costs([3.0, 1.0, 2.0]);
        assert_eq!(p.len(), 3);
        assert!((p.weight(0) - 1.5).abs() < 1e-12, "{}", p.weight(0));
        assert!((p.weight(1) - 1.0).abs() < 1e-12);
        assert!((p.weight(2) - 0.5).abs() < 1e-12);
        assert!((p.weight(3) - 1.5).abs() < 1e-12, "weights cycle");
        assert!((p.spread() - 3.0).abs() < 1e-12);
        // Degenerate inputs fall back to uniform.
        assert!(CostProfile::from_costs([]).is_uniform());
        assert!(CostProfile::from_costs([0.0, -1.0, f64::NAN]).is_uniform());
    }

    #[test]
    fn quantile_sampling_conserves_work_and_stays_representative() {
        let p = CostProfile::from_costs((0..16).map(|i| 1.0 + i as f64));
        // Band means conserve total work exactly for any rank size.
        for n in [1usize, 2, 3, 5, 16, 32, 64, 100] {
            let total: f64 = (0..n).map(|k| p.quantile_weight(k, n)).sum();
            assert!((total - n as f64).abs() < 1e-9, "n={n}: total {total}");
        }
        // Small n: band means, not the raw heaviest patches.
        let w2: Vec<f64> = (0..2).map(|k| p.quantile_weight(k, 2)).collect();
        assert!(w2[0] > w2[1], "descending quantiles");
        assert!(w2[0] < p.weight(0), "n=2 gets the top band's mean, not its max");
    }

    #[test]
    fn measured_spread_slows_the_pipeline_but_not_below_uniform_work() {
        // Same total work, skewed across patches: the critical path can
        // only get longer (the heaviest kernels serialize on the engine),
        // and the effect shrinks as patches per GPU shrink.
        let g = grid(256, 16);
        let p = MachineParams::titan();
        let skew = CostProfile::from_costs((0..64).map(|i| 1.0 + (i % 8) as f64));
        let uni = simulate_timestep(&g, 64, 4, &p, StoreModel::WaitFreePool);
        let mea = simulate_timestep_with(&g, 64, 4, &p, StoreModel::WaitFreePool, &skew);
        assert!(
            mea.time >= uni.time * 0.999,
            "measured spread cannot beat uniform: {} vs {}",
            mea.time,
            uni.time
        );
        // Within 2x: mean-1 normalization keeps total work equal.
        assert!(mea.time < uni.time * 2.0, "{} vs {}", mea.time, uni.time);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let g = grid(128, 16);
        let p = MachineParams::titan();
        let pt = simulate_timestep(&g, 64, 4, &p, StoreModel::WaitFreePool);
        let sum = pt.breakdown.props + pt.breakdown.comm + pt.breakdown.compute;
        assert!((sum - pt.time).abs() < 1e-9 * pt.time.max(1.0));
    }
}
