//! Per-rank work/communication census for the 2-level RMCRT pipeline.
//!
//! Derived from the same rules the runtime's graph compiler applies, but
//! computed arithmetically from the patch distribution so a 16,384-rank
//! census costs milliseconds instead of materializing 10⁹ graph edges.
//! `tests::census_matches_compiled_graph` pins it against the real
//! compiler at small rank counts.

use uintah_grid::{Grid, PatchDistribution, Region};

/// What one rank does in one radiation timestep.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankCensus {
    /// Fine patches owned by this rank.
    pub local_fine_patches: usize,
    /// Cells per fine patch.
    pub cells_per_patch: usize,
    /// Ghost-halo messages sent (and an equal census received, by symmetry
    /// of the halo relation across the fleet).
    pub ghost_msgs_sent: usize,
    /// Total cells across ghost windows sent.
    pub ghost_cells_sent: usize,
    /// Whole-level (all-to-all) messages sent: one per local patch per
    /// other consumer rank per property variable.
    pub level_msgs_sent: usize,
    /// Total cells across level windows sent.
    pub level_cells_sent: usize,
    /// Whole-level messages received: one per remote fine patch per
    /// property variable.
    pub level_msgs_recv: usize,
    /// Total cells across level windows received.
    pub level_cells_recv: usize,
    /// Coarse-level cells in the whole-domain replica (per variable).
    pub coarse_level_cells: usize,
    /// GPU kernels launched (one per local fine patch).
    pub kernels: usize,
}

impl RankCensus {
    /// Bytes sent, assuming 8-byte cells for the two f64 fields and 1-byte
    /// for cellType (i.e. 17 bytes per 3-variable cell triple / 3).
    pub fn bytes_sent(&self) -> u64 {
        // Of the 3 property variables, 2 are f64 and 1 is u8.
        let per_cell_avg = (8 + 8 + 1) as f64 / 3.0;
        (((self.ghost_cells_sent + self.level_cells_sent) as f64) * per_cell_avg) as u64
    }

    pub fn bytes_recv(&self) -> u64 {
        let per_cell_avg = (8 + 8 + 1) as f64 / 3.0;
        ((self.level_cells_recv as f64) * per_cell_avg) as u64
    }

    pub fn msgs_sent(&self) -> usize {
        self.ghost_msgs_sent + self.level_msgs_sent
    }
}

/// Census of `rank` for the 2-level RMCRT pipeline with `halo` fine ghost
/// cells and 3 property variables (abskg, sigmaT4/π, cellType).
pub fn rank_census(grid: &Grid, dist: &PatchDistribution, rank: usize, halo: i32) -> RankCensus {
    const NVARS: usize = 3;
    assert_eq!(grid.num_levels(), 2, "census models the paper's 2-level pipeline");
    let fine = grid.fine_level();
    let fine_li = grid.fine_level_index();
    let rr = fine.ratio_to_coarser().as_ivec();

    let mut c = RankCensus {
        cells_per_patch: fine.patch_size().volume(),
        coarse_level_cells: grid.coarsest_level().num_cells(),
        ..Default::default()
    };

    let nranks = dist.nranks();
    let total_fine = fine.num_patches();

    for &pid in dist.owned_by(rank) {
        let patch = grid.patch(pid);
        if patch.level_index() != fine_li {
            continue;
        }
        c.local_fine_patches += 1;
        // Ghost sends: windows to remote patches whose halo overlaps us.
        for p in fine.patches_overlapping(&patch.with_ghosts(halo)) {
            if p.id() == pid || dist.rank_of(p.id()) == rank {
                continue;
            }
            let window: Region = p.with_ghosts(halo).intersect(&patch.interior());
            if !window.is_empty() {
                c.ghost_msgs_sent += NVARS;
                c.ghost_cells_sent += NVARS * window.volume();
            }
        }
        // Level windows: broadcast to every other rank that owns fine
        // patches (every rank is a consumer in these benchmarks).
        let window_cells = patch.interior().coarsened(rr).volume();
        c.level_msgs_sent += NVARS * (nranks - 1);
        c.level_cells_sent += NVARS * (nranks - 1) * window_cells;
    }

    // Level receives: one window per remote fine patch per variable.
    let remote_fine = total_fine - c.local_fine_patches;
    c.level_msgs_recv = NVARS * remote_fine;
    // Every fine patch's window has the same size on a regular grid.
    let window_cells = {
        let p0 = &fine.patches()[0];
        p0.interior().coarsened(rr).volume()
    };
    c.level_cells_recv = NVARS * remote_fine * window_cells;
    c.kernels = c.local_fine_patches;
    c
}

/// Max census over a sample of ranks (the critical path at scale is set by
/// the most loaded rank; sampling keeps 16k-rank sweeps fast).
pub fn max_census(grid: &Grid, dist: &PatchDistribution, halo: i32, sample: usize) -> RankCensus {
    let nranks = dist.nranks();
    let stride = (nranks / sample.max(1)).max(1);
    let mut best = RankCensus::default();
    let mut best_key = 0usize;
    for rank in (0..nranks).step_by(stride) {
        let c = rank_census(grid, dist, rank, halo);
        let key = c.local_fine_patches * 1_000_000 + c.msgs_sent();
        if key > best_key {
            best_key = key;
            best = c;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmcrt_core::tasks::{multilevel_decls, RmcrtPipeline};
    use rmcrt_core::{BurnsChriston, RmcrtParams};
    use uintah_grid::{DistributionPolicy, IntVector};
    use uintah_runtime::graph;

    fn small() -> Grid {
        BurnsChriston::small_grid(32, 8)
    }

    #[test]
    fn census_matches_compiled_graph() {
        let grid = small();
        let halo = 2;
        for nranks in [2usize, 4] {
            let dist = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
            let pipeline = RmcrtPipeline {
                params: RmcrtParams {
                    nrays: 1,
                    ..Default::default()
                },
                halo,
                problem: BurnsChriston::default(),
            };
            let decls = multilevel_decls(&grid, pipeline, false);
            for rank in 0..nranks {
                let cg = graph::compile(&grid, &dist, &decls, rank, 0);
                let c = rank_census(&grid, &dist, rank, halo);
                assert_eq!(
                    c.msgs_sent(),
                    cg.stats.messages,
                    "rank {rank}/{nranks}: send count"
                );
                assert_eq!(
                    c.ghost_cells_sent + c.level_cells_sent,
                    cg.stats.cells_sent,
                    "rank {rank}/{nranks}: cells sent"
                );
                // Level receives match the graph's Level recv entries.
                let level_recvs = cg
                    .recvs
                    .iter()
                    .filter(|r| matches!(r.action, graph::RecvAction::Level { .. }))
                    .count();
                assert_eq!(c.level_msgs_recv, level_recvs, "rank {rank}: level recvs");
            }
        }
    }

    #[test]
    fn paper_patch_count_262k() {
        // §IV-B: 512³ fine + 8³ patches = 262,144 patches.
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(512))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(8))
            .build();
        assert_eq!(grid.fine_level().num_patches(), 262_144);
    }

    #[test]
    fn level_recv_volume_constant_in_rank_count() {
        // The coarse replica a rank must assemble is the whole level, so
        // received cells stay ~constant as ranks grow — the property that
        // makes the multi-level algorithm scale.
        // Once a rank owns a small fraction of the fine patches, the recv
        // volume approaches 3 × (all fine windows) and stays flat.
        let grid = small();
        let mut volumes = Vec::new();
        for nranks in [8usize, 16, 32] {
            let dist = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
            volumes.push(rank_census(&grid, &dist, 0, 2).level_cells_recv);
        }
        let min = *volumes.iter().min().unwrap() as f64;
        let max = *volumes.iter().max().unwrap() as f64;
        assert!(max / min < 1.2, "recv volume should be ~flat: {volumes:?}");
    }

    #[test]
    fn sends_per_rank_shrink_with_patches() {
        let grid = small();
        let d2 = PatchDistribution::new(&grid, 2, DistributionPolicy::MortonSfc);
        let d8 = PatchDistribution::new(&grid, 8, DistributionPolicy::MortonSfc);
        let c2 = rank_census(&grid, &d2, 0, 2);
        let c8 = rank_census(&grid, &d8, 0, 2);
        assert!(c8.local_fine_patches < c2.local_fine_patches);
        assert!(c8.kernels < c2.kernels);
    }

    #[test]
    fn max_census_at_least_rank0() {
        let grid = small();
        let dist = PatchDistribution::new(&grid, 4, DistributionPolicy::MortonSfc);
        let m = max_census(&grid, &dist, 2, 4);
        let r0 = rank_census(&grid, &dist, 0, 2);
        assert!(m.local_fine_patches >= r0.local_fine_patches);
    }
}
