//! Hardware constants of the modeled machine, and the single calibration
//! path that derives them from a measured [`CalibrationSnapshot`].

use uintah_runtime::CalibrationSnapshot;


/// Which request-store implementation the modeled runtime uses; scales the
/// per-message CPU cost and its serialization across threads (calibrated
//  against the `request_store` microbenchmark — see EXPERIMENTS.md).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreModel {
    /// Mutex-protected vector + Testsome: message processing serializes on
    /// the lock, so effective concurrency is ~1 regardless of threads.
    MutexVector,
    /// Wait-free pool: message processing scales with the worker threads.
    WaitFreePool,
}

/// Model parameters for one Titan-like node and its network.
///
/// Network and node figures are from the paper's Titan footnote; GPU and
/// per-message costs are calibration constants (documented and pinned in
/// EXPERIMENTS.md) — absolute outputs are model estimates, shapes are the
/// reproduction target.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Worker threads per node (the paper uses 16, one per Opteron core).
    pub cpu_threads: usize,
    /// Network latency (s). Titan Gemini: 1.4 µs.
    pub net_latency: f64,
    /// Peak injection bandwidth per node (B/s). Titan: 20 GB/s.
    pub injection_bw: f64,
    /// Effective PCIe bandwidth per copy engine (B/s). Gen2 x16 ≈ 6 GB/s.
    pub pcie_bw: f64,
    /// Fixed kernel launch + stream overhead (s).
    pub kernel_launch: f64,
    /// Peak GPU ray-march throughput (cell-steps/s) at full occupancy.
    pub gpu_cellsteps_per_s: f64,
    /// Patch size (cells) at which the GPU reaches half its peak
    /// throughput — small patches under-fill the K20X (paper §V point 1).
    pub gpu_halfsat_cells: f64,
    /// CPU property-initialization rate per core (cells/s).
    pub cpu_init_cells_per_s: f64,
    /// Ray-march throughput of one CPU core (cell-steps/s), for the
    /// CPU-only mode (the paper's predecessor [5] ran RMCRT on 256K CPU
    /// cores). Calibrated from the host `ray_march` criterion bench.
    pub cpu_cellsteps_per_s: f64,
    /// CPU cost to post or process one message (s) with the wait-free
    /// store; the mutex store pays the same per message but serialized.
    pub msg_cpu_cost: f64,
    /// Rays per cell (the benchmarks use 100).
    pub nrays: f64,
}

impl MachineParams {
    /// Titan XK7 defaults.
    pub fn titan() -> Self {
        Self {
            cpu_threads: 16,
            net_latency: 1.4e-6,
            injection_bw: 20e9,
            pcie_bw: 6e9,
            kernel_launch: 20e-6,
            // The march is memory-latency-bound (scattered reads of abskg /
            // sigmaT4 per cell-step). A K20X sustains a few 1e8 cell-steps/s
            // at full occupancy — calibrated so the LARGE-problem timestep
            // at 4096 GPUs lands in the paper's ~10 s regime (EXPERIMENTS.md).
            gpu_cellsteps_per_s: 3.0e8,
            gpu_halfsat_cells: 16_384.0,
            cpu_init_cells_per_s: 30e6,
            // One Opteron-class core marches ~10⁷ cell-steps/s (memory
            // bound); 16 cores ≈ 1/2 of a saturated K20X, matching the
            // paper's observation that >90% of Titan's FLOPS are on GPUs.
            cpu_cellsteps_per_s: 1.0e7,
            msg_cpu_cost: 2.0e-6,
            nrays: 100.0,
        }
    }

    /// A Summit-class node, the machine the paper anticipates ("the
    /// planned DOE Summit and Sierra machines"): modeled as one endpoint
    /// per GPU (Summit schedules one rank per GPU), V100-class throughput
    /// (~6x a K20X on this memory-bound kernel via HBM2), NVLink-class
    /// host links (~4x PCIe gen2 per direction), a fat-tree network with
    /// lower latency and higher injection bandwidth, and beefier cores.
    pub fn summit() -> Self {
        Self {
            cpu_threads: 7, // 42 cores / 6 GPUs per node
            net_latency: 1.0e-6,
            injection_bw: 25e9, // per-GPU share of the dual EDR NICs + NVLink
            pcie_bw: 24e9,      // NVLink 2.0 per direction (3 bricks)
            kernel_launch: 10e-6,
            gpu_cellsteps_per_s: 1.8e9, // V100 HBM2 ≈ 6x K20X on this kernel
            gpu_halfsat_cells: 32_768.0, // bigger GPU needs more work to fill
            cpu_init_cells_per_s: 60e6,
            cpu_cellsteps_per_s: 2.0e7,
            msg_cpu_cost: 1.0e-6,
            nrays: 100.0,
        }
    }

    /// GPU throughput for a kernel over `cells` cells: saturating
    /// utilization curve `peak · cells / (cells + halfsat)`.
    pub fn gpu_throughput(&self, cells: f64) -> f64 {
        self.gpu_cellsteps_per_s * cells / (cells + self.gpu_halfsat_cells)
    }

    /// Modeled mean DDA steps per ray for a fine ROI of `roi_cells_1d`
    /// cells across and a coarse level `coarse_1d` across: mean chord on
    /// the fine ROI plus the coarse remainder (threshold-limited).
    pub fn steps_per_ray(&self, roi_cells_1d: f64, coarse_1d: f64) -> f64 {
        0.75 * roi_cells_1d + 0.5 * coarse_1d
    }

    /// Derive machine rates from a measured [`CalibrationSnapshot`] — the
    /// one calibration path from a real executor run to the model,
    /// replacing the former per-quantity `calibrate_*` entry points.
    ///
    /// `base` supplies every pinned constant (network figures, thread
    /// counts, saturation knee, rays) and the fallback for any quantity
    /// whose measurement is degenerate; `scale` maps host-measured rates
    /// onto the modeled hardware. Three rates are measured:
    ///
    /// * **March throughput** — each device's kernel timeline yields a
    ///   cell-step rate (`invocations × cellsteps_per_invocation / wall`);
    ///   the mean over non-degenerate devices becomes
    ///   `cpu_cellsteps_per_s`, and `× device_multiplier` becomes
    ///   `gpu_cellsteps_per_s`. Idle devices (zero invocations or wall)
    ///   are excluded rather than averaged in as zero.
    /// * **Bus bandwidth** — each PCIe direction is calibrated on its own
    ///   copy-engine timeline (upload bytes over upload occupancy, drain
    ///   bytes over drain occupancy) and the non-degenerate directions are
    ///   averaged, `× pcie_multiplier` (a host memcpy is much faster than a
    ///   PCIe gen2 link). Per-direction rates keep an upload-heavy prefetch
    ///   run from drowning out the drain measurement and vice versa; an
    ///   idle direction is excluded rather than averaged in as zero.
    /// * **Per-message CPU cost** — measured local-comm wall time divided
    ///   by messages posted + processed, `× msg_cost_multiplier`.
    pub fn from_snapshot(
        base: MachineParams,
        snap: &CalibrationSnapshot,
        scale: &CalibrationScale,
    ) -> MachineParams {
        let mut m = base;
        let rates: Vec<f64> = snap
            .devices
            .iter()
            .map(|d| &d.kernels)
            .filter(|ks| ks.wall_ns > 0 && ks.invocations > 0)
            .map(|ks| {
                ks.invocations as f64 * scale.cellsteps_per_invocation
                    / ks.wall().as_secs_f64()
            })
            .collect();
        if !rates.is_empty() {
            let measured = rates.iter().sum::<f64>() / rates.len() as f64;
            m.cpu_cellsteps_per_s = measured;
            m.gpu_cellsteps_per_s = measured * scale.device_multiplier;
        }
        let dir_bw = |(bytes, busy_ns): (u64, u64)| -> Option<f64> {
            (bytes > 0 && busy_ns > 0).then(|| bytes as f64 / (busy_ns as f64 * 1e-9))
        };
        let dirs: Vec<f64> = [dir_bw(snap.h2d_totals()), dir_bw(snap.d2h_totals())]
            .into_iter()
            .flatten()
            .collect();
        if !dirs.is_empty() {
            m.pcie_bw = dirs.iter().sum::<f64>() / dirs.len() as f64 * scale.pcie_multiplier;
        }
        // Prefer the min-over-steps per-message cost (uncontended; the
        // aggregate mean spikes whenever the OS deschedules a worker
        // mid-sweep), falling back to the mean for old snapshots.
        if snap.msg_ns_min > 0 {
            m.msg_cpu_cost = snap.msg_ns_min as f64 * 1e-9 * scale.msg_cost_multiplier;
        } else {
            let msgs = snap.messages_sent + snap.messages_received;
            if msgs > 0 && snap.local_comm_ns > 0 {
                m.msg_cpu_cost =
                    snap.local_comm_ns as f64 * 1e-9 / msgs as f64 * scale.msg_cost_multiplier;
            }
        }
        m
    }
}

/// How a [`CalibrationSnapshot`]'s host-measured rates map onto the
/// modeled machine. The host this stack runs on is not a Titan node, so
/// each measured rate carries a documented multiplier onto the modeled
/// hardware; the *measurement* (this host's rate) is the varying input,
/// the multipliers are pinned model constants (EXPERIMENTS.md E12).
#[derive(Clone, Copy, Debug)]
pub struct CalibrationScale {
    /// Modeled DDA cell-steps per metered kernel invocation: rays/cell ×
    /// mean steps per ray for the geometry of the calibration run
    /// (invocations count cells dispatched, not ray steps).
    pub cellsteps_per_invocation: f64,
    /// Measured host march rate × this = modeled accelerator rate. A K20X
    /// sustains roughly 30× one host core on this memory-latency-bound
    /// kernel; a V100-class part roughly 6× that again.
    pub device_multiplier: f64,
    /// Measured copy-engine (host memcpy) bandwidth × this = modeled bus
    /// bandwidth.
    pub pcie_multiplier: f64,
    /// Measured per-message local-comm cost × this = modeled per-message
    /// CPU cost.
    pub msg_cost_multiplier: f64,
}

impl CalibrationScale {
    /// Take the snapshot's rates as-is — the stats came from the target
    /// machine itself.
    pub fn identity(cellsteps_per_invocation: f64) -> Self {
        Self {
            cellsteps_per_invocation,
            device_multiplier: 1.0,
            pcie_multiplier: 1.0,
            msg_cost_multiplier: 1.0,
        }
    }

    /// Host measurement → modeled Titan node (K20X ≈ 30× one host core on
    /// the march; PCIe gen2 well below a host memcpy).
    pub fn host_to_titan(cellsteps_per_invocation: f64) -> Self {
        Self {
            cellsteps_per_invocation,
            device_multiplier: 30.0,
            pcie_multiplier: 0.75,
            msg_cost_multiplier: 1.0,
        }
    }

    /// Host measurement → modeled Summit endpoint (V100 ≈ 6× a K20X on
    /// this kernel via HBM2; NVLink ≈ 4× PCIe gen2; beefier cores halve
    /// the per-message cost).
    pub fn host_to_summit(cellsteps_per_invocation: f64) -> Self {
        Self {
            cellsteps_per_invocation,
            device_multiplier: 180.0,
            pcie_multiplier: 3.0,
            msg_cost_multiplier: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_increases_with_patch_size() {
        let m = MachineParams::titan();
        let t16 = m.gpu_throughput(16f64.powi(3));
        let t32 = m.gpu_throughput(32f64.powi(3));
        let t64 = m.gpu_throughput(64f64.powi(3));
        assert!(t16 < t32 && t32 < t64, "{t16} {t32} {t64}");
        // 64³ patches reach >90% of peak; 16³ stays well under half.
        assert!(t64 > 0.9 * m.gpu_cellsteps_per_s);
        assert!(t16 < 0.5 * m.gpu_cellsteps_per_s);
    }

    #[test]
    fn summit_node_outruns_titan_node() {
        let t = MachineParams::titan();
        let s = MachineParams::summit();
        // At saturation a V100-class GPU is several times a K20X.
        let cells = 64f64.powi(3);
        let ratio = s.gpu_throughput(cells) / t.gpu_throughput(cells);
        assert!(ratio > 3.0 && ratio < 10.0, "Summit/Titan GPU ratio {ratio}");
        assert!(s.pcie_bw > t.pcie_bw);
        assert!(s.net_latency < t.net_latency);
    }

    use uintah_exec::KernelStats;
    use uintah_runtime::calibrate::DeviceCalibration;

    fn device(invocations: u64, wall_ns: u64) -> DeviceCalibration {
        DeviceCalibration {
            kernels: KernelStats {
                launches: 8,
                invocations,
                bytes_moved: 0,
                wall_ns,
            },
            ..DeviceCalibration::default()
        }
    }

    #[test]
    fn from_snapshot_updates_both_march_rates() {
        // 1e6 invocations, 200 cell-steps each, over 0.5 s → 4e8 host
        // cell-steps/s; a 30x device multiplier puts the GPU at 1.2e10.
        let snap = CalibrationSnapshot {
            devices: vec![device(1_000_000, 500_000_000)],
            ..CalibrationSnapshot::default()
        };
        let mut scale = CalibrationScale::identity(200.0);
        scale.device_multiplier = 30.0;
        let m = MachineParams::from_snapshot(MachineParams::titan(), &snap, &scale);
        assert!((m.cpu_cellsteps_per_s - 4.0e8).abs() < 1.0);
        assert!((m.gpu_cellsteps_per_s - 1.2e10).abs() < 10.0);

        // Degenerate snapshots leave every pinned default untouched.
        let empty = CalibrationSnapshot::default();
        let d = MachineParams::from_snapshot(MachineParams::titan(), &empty, &scale);
        assert!((d.gpu_cellsteps_per_s - MachineParams::titan().gpu_cellsteps_per_s).abs() < 1.0);
        assert!((d.pcie_bw - MachineParams::titan().pcie_bw).abs() < 1.0);
        assert!((d.msg_cpu_cost - MachineParams::titan().msg_cpu_cost).abs() < 1e-12);
    }

    #[test]
    fn from_snapshot_averages_across_fleet_devices() {
        // Device 0: 4e8 cellsteps/s; device 1: 2e8; device 2 idle (must be
        // excluded, not averaged in as zero). Mean of the live devices: 3e8.
        let snap = CalibrationSnapshot {
            devices: vec![
                device(1_000_000, 500_000_000),
                device(1_000_000, 1_000_000_000),
                DeviceCalibration::default(),
            ],
            ..CalibrationSnapshot::default()
        };
        let mut scale = CalibrationScale::identity(200.0);
        scale.device_multiplier = 30.0;
        let m = MachineParams::from_snapshot(MachineParams::titan(), &snap, &scale);
        assert!((m.cpu_cellsteps_per_s - 3.0e8).abs() < 1.0, "{}", m.cpu_cellsteps_per_s);
        assert!((m.gpu_cellsteps_per_s - 9.0e9).abs() < 10.0);
    }

    #[test]
    fn from_snapshot_calibrates_pcie_from_both_directions() {
        // Upload engine: 48 MB in 6 ms → 8 GB/s. Drain engine: 32 MB in
        // 4 ms → 8 GB/s. Mean 8 GB/s measured; a 0.75 multiplier models
        // the bus at 6 GB/s.
        let snap = CalibrationSnapshot {
            devices: vec![DeviceCalibration {
                h2d_bytes: 48_000_000,
                h2d_busy_ns: 6_000_000,
                d2h_bytes: 32_000_000,
                d2h_busy_ns: 4_000_000,
                ..DeviceCalibration::default()
            }],
            ..CalibrationSnapshot::default()
        };
        let mut scale = CalibrationScale::identity(1.0);
        scale.pcie_multiplier = 0.75;
        let m = MachineParams::from_snapshot(MachineParams::titan(), &snap, &scale);
        assert!((m.pcie_bw - 6.0e9).abs() < 1.0, "pcie_bw {}", m.pcie_bw);
    }

    #[test]
    fn from_snapshot_pcie_averages_directions_not_pooled_bytes() {
        // Asymmetric traffic: a prefetch-heavy run uploads 90 MB at
        // 9 GB/s while draining only 1 MB at 1 GB/s. Pooling bytes over
        // occupancy would give ~8.26 GB/s — the drain measurement would
        // vanish; the per-direction mean is 5 GB/s.
        let snap = CalibrationSnapshot {
            devices: vec![DeviceCalibration {
                h2d_bytes: 90_000_000,
                h2d_busy_ns: 10_000_000,
                d2h_bytes: 1_000_000,
                d2h_busy_ns: 1_000_000,
                ..DeviceCalibration::default()
            }],
            ..CalibrationSnapshot::default()
        };
        let m = MachineParams::from_snapshot(
            MachineParams::titan(),
            &snap,
            &CalibrationScale::identity(1.0),
        );
        assert!((m.pcie_bw - 5.0e9).abs() < 1.0, "pcie_bw {}", m.pcie_bw);

        // An idle direction is excluded, not averaged in as zero.
        let up_only = CalibrationSnapshot {
            devices: vec![DeviceCalibration {
                h2d_bytes: 90_000_000,
                h2d_busy_ns: 10_000_000,
                ..DeviceCalibration::default()
            }],
            ..CalibrationSnapshot::default()
        };
        let m = MachineParams::from_snapshot(
            MachineParams::titan(),
            &up_only,
            &CalibrationScale::identity(1.0),
        );
        assert!((m.pcie_bw - 9.0e9).abs() < 1.0, "pcie_bw {}", m.pcie_bw);
    }

    #[test]
    fn from_snapshot_calibrates_msg_cost_from_local_comm() {
        // 400 µs of local comm across 100 + 100 messages → 2 µs/message.
        let snap = CalibrationSnapshot {
            messages_sent: 100,
            messages_received: 100,
            local_comm_ns: 400_000,
            ..CalibrationSnapshot::default()
        };
        let m = MachineParams::from_snapshot(
            MachineParams::titan(),
            &snap,
            &CalibrationScale::identity(1.0),
        );
        assert!((m.msg_cpu_cost - 2.0e-6).abs() < 1e-12, "{}", m.msg_cpu_cost);
    }

    #[test]
    fn from_snapshot_is_deterministic_in_its_input() {
        // Bit-identical snapshots must give bit-identical params — the
        // property the round-trip test in tests/calibration.rs leans on.
        let snap = CalibrationSnapshot {
            messages_sent: 7,
            messages_received: 13,
            local_comm_ns: 90_001,
            devices: vec![device(123_457, 777_777)],
            ..CalibrationSnapshot::default()
        };
        let scale = CalibrationScale::host_to_titan(88.0);
        let a = MachineParams::from_snapshot(MachineParams::titan(), &snap, &scale);
        let b = MachineParams::from_snapshot(MachineParams::titan(), &snap.clone(), &scale);
        assert_eq!(a.gpu_cellsteps_per_s.to_bits(), b.gpu_cellsteps_per_s.to_bits());
        assert_eq!(a.cpu_cellsteps_per_s.to_bits(), b.cpu_cellsteps_per_s.to_bits());
        assert_eq!(a.pcie_bw.to_bits(), b.pcie_bw.to_bits());
        assert_eq!(a.msg_cpu_cost.to_bits(), b.msg_cpu_cost.to_bits());
    }

    #[test]
    fn titan_constants_match_paper_footnote() {
        let m = MachineParams::titan();
        assert_eq!(m.cpu_threads, 16);
        assert!((m.net_latency - 1.4e-6).abs() < 1e-12);
        assert!((m.injection_bw - 20e9).abs() < 1.0);
    }
}
