//! Hardware constants of the modeled machine.

use uintah_exec::KernelStats;


/// Which request-store implementation the modeled runtime uses; scales the
/// per-message CPU cost and its serialization across threads (calibrated
//  against the `request_store` microbenchmark — see EXPERIMENTS.md).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreModel {
    /// Mutex-protected vector + Testsome: message processing serializes on
    /// the lock, so effective concurrency is ~1 regardless of threads.
    MutexVector,
    /// Wait-free pool: message processing scales with the worker threads.
    WaitFreePool,
}

/// Model parameters for one Titan-like node and its network.
///
/// Network and node figures are from the paper's Titan footnote; GPU and
/// per-message costs are calibration constants (documented and pinned in
/// EXPERIMENTS.md) — absolute outputs are model estimates, shapes are the
/// reproduction target.
#[derive(Clone, Copy, Debug)]
pub struct MachineParams {
    /// Worker threads per node (the paper uses 16, one per Opteron core).
    pub cpu_threads: usize,
    /// Network latency (s). Titan Gemini: 1.4 µs.
    pub net_latency: f64,
    /// Peak injection bandwidth per node (B/s). Titan: 20 GB/s.
    pub injection_bw: f64,
    /// Effective PCIe bandwidth per copy engine (B/s). Gen2 x16 ≈ 6 GB/s.
    pub pcie_bw: f64,
    /// Fixed kernel launch + stream overhead (s).
    pub kernel_launch: f64,
    /// Peak GPU ray-march throughput (cell-steps/s) at full occupancy.
    pub gpu_cellsteps_per_s: f64,
    /// Patch size (cells) at which the GPU reaches half its peak
    /// throughput — small patches under-fill the K20X (paper §V point 1).
    pub gpu_halfsat_cells: f64,
    /// CPU property-initialization rate per core (cells/s).
    pub cpu_init_cells_per_s: f64,
    /// Ray-march throughput of one CPU core (cell-steps/s), for the
    /// CPU-only mode (the paper's predecessor [5] ran RMCRT on 256K CPU
    /// cores). Calibrated from the host `ray_march` criterion bench.
    pub cpu_cellsteps_per_s: f64,
    /// CPU cost to post or process one message (s) with the wait-free
    /// store; the mutex store pays the same per message but serialized.
    pub msg_cpu_cost: f64,
    /// Rays per cell (the benchmarks use 100).
    pub nrays: f64,
}

impl MachineParams {
    /// Titan XK7 defaults.
    pub fn titan() -> Self {
        Self {
            cpu_threads: 16,
            net_latency: 1.4e-6,
            injection_bw: 20e9,
            pcie_bw: 6e9,
            kernel_launch: 20e-6,
            // The march is memory-latency-bound (scattered reads of abskg /
            // sigmaT4 per cell-step). A K20X sustains a few 1e8 cell-steps/s
            // at full occupancy — calibrated so the LARGE-problem timestep
            // at 4096 GPUs lands in the paper's ~10 s regime (EXPERIMENTS.md).
            gpu_cellsteps_per_s: 3.0e8,
            gpu_halfsat_cells: 16_384.0,
            cpu_init_cells_per_s: 30e6,
            // One Opteron-class core marches ~10⁷ cell-steps/s (memory
            // bound); 16 cores ≈ 1/2 of a saturated K20X, matching the
            // paper's observation that >90% of Titan's FLOPS are on GPUs.
            cpu_cellsteps_per_s: 1.0e7,
            msg_cpu_cost: 2.0e-6,
            nrays: 100.0,
        }
    }

    /// A Summit-class node, the machine the paper anticipates ("the
    /// planned DOE Summit and Sierra machines"): modeled as one endpoint
    /// per GPU (Summit schedules one rank per GPU), V100-class throughput
    /// (~6x a K20X on this memory-bound kernel via HBM2), NVLink-class
    /// host links (~4x PCIe gen2 per direction), a fat-tree network with
    /// lower latency and higher injection bandwidth, and beefier cores.
    pub fn summit() -> Self {
        Self {
            cpu_threads: 7, // 42 cores / 6 GPUs per node
            net_latency: 1.0e-6,
            injection_bw: 25e9, // per-GPU share of the dual EDR NICs + NVLink
            pcie_bw: 24e9,      // NVLink 2.0 per direction (3 bricks)
            kernel_launch: 10e-6,
            gpu_cellsteps_per_s: 1.8e9, // V100 HBM2 ≈ 6x K20X on this kernel
            gpu_halfsat_cells: 32_768.0, // bigger GPU needs more work to fill
            cpu_init_cells_per_s: 60e6,
            cpu_cellsteps_per_s: 2.0e7,
            msg_cpu_cost: 1.0e-6,
            nrays: 100.0,
        }
    }

    /// GPU throughput for a kernel over `cells` cells: saturating
    /// utilization curve `peak · cells / (cells + halfsat)`.
    pub fn gpu_throughput(&self, cells: f64) -> f64 {
        self.gpu_cellsteps_per_s * cells / (cells + self.gpu_halfsat_cells)
    }

    /// Modeled mean DDA steps per ray for a fine ROI of `roi_cells_1d`
    /// cells across and a coarse level `coarse_1d` across: mean chord on
    /// the fine ROI plus the coarse remainder (threshold-limited).
    pub fn steps_per_ray(&self, roi_cells_1d: f64, coarse_1d: f64) -> f64 {
        0.75 * roi_cells_1d + 0.5 * coarse_1d
    }

    /// Calibrate the GPU throughput constant from a measured exec-layer
    /// [`KernelStats`] snapshot — the single calibration path shared by
    /// the host and Device spaces now that every hot loop dispatches
    /// through `uintah-exec`.
    ///
    /// `cellsteps_per_invocation` converts the dispatch's invocation count
    /// (cells visited) into modeled DDA cell-steps (rays/cell × mean steps
    /// per ray for the benchmark geometry). `device_multiplier` scales the
    /// host-measured rate up to the modeled accelerator (a K20X sustains
    /// roughly 30× one Opteron core on this memory-latency-bound kernel);
    /// pass 1.0 when the stats came from the Device space of the target
    /// machine itself. Also refreshes `cpu_cellsteps_per_s` with the raw
    /// measured host rate so both march models share one measurement.
    ///
    /// Stats with zero wall time or zero invocations are ignored (the
    /// params keep their pinned defaults).
    pub fn calibrate_from_kernel_stats(
        &mut self,
        ks: &KernelStats,
        cellsteps_per_invocation: f64,
        device_multiplier: f64,
    ) {
        self.calibrate_from_device_kernel_stats(
            std::slice::from_ref(ks),
            cellsteps_per_invocation,
            device_multiplier,
        );
    }

    /// Calibrate from per-device [`KernelStats`] snapshots (one per fleet
    /// device): each device's measured cell-step rate is computed
    /// independently and the *average* over non-degenerate devices becomes
    /// the calibrated rate — a fleet of identical simulated devices should
    /// not let one idle device (zero invocations) or one contended device
    /// skew the model. Devices with zero wall time or zero invocations are
    /// excluded; if every snapshot is degenerate the params keep their
    /// pinned defaults.
    pub fn calibrate_from_device_kernel_stats(
        &mut self,
        per_device: &[KernelStats],
        cellsteps_per_invocation: f64,
        device_multiplier: f64,
    ) {
        let rates: Vec<f64> = per_device
            .iter()
            .filter(|ks| ks.wall().as_secs_f64() > 0.0 && ks.invocations > 0)
            .map(|ks| ks.invocations as f64 * cellsteps_per_invocation / ks.wall().as_secs_f64())
            .collect();
        if rates.is_empty() {
            return;
        }
        let measured = rates.iter().sum::<f64>() / rates.len() as f64;
        self.cpu_cellsteps_per_s = measured;
        self.gpu_cellsteps_per_s = measured * device_multiplier;
    }

    /// Calibrate the effective PCIe bandwidth from a measured copy-engine
    /// timeline: `bytes` moved while the engine was occupied for `busy`
    /// wall time (the `d2h_bytes` / `d2h_busy_ns` pair of the executor's
    /// `DeviceCounters`, passed as plain values so this crate stays
    /// decoupled from the GPU layer). `bandwidth_multiplier` scales the
    /// host-measured drain rate to the modeled bus (a real PCIe gen2 link
    /// is far slower than a host memcpy); pass 1.0 when the timeline came
    /// from the target machine itself.
    ///
    /// Degenerate timelines (zero bytes or zero busy time) are ignored and
    /// the pinned default is kept.
    pub fn calibrate_pcie_from_engine_timelines(
        &mut self,
        bytes: u64,
        busy: std::time::Duration,
        bandwidth_multiplier: f64,
    ) {
        let secs = busy.as_secs_f64();
        if secs <= 0.0 || bytes == 0 {
            return;
        }
        self.pcie_bw = bytes as f64 / secs * bandwidth_multiplier;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_increases_with_patch_size() {
        let m = MachineParams::titan();
        let t16 = m.gpu_throughput(16f64.powi(3));
        let t32 = m.gpu_throughput(32f64.powi(3));
        let t64 = m.gpu_throughput(64f64.powi(3));
        assert!(t16 < t32 && t32 < t64, "{t16} {t32} {t64}");
        // 64³ patches reach >90% of peak; 16³ stays well under half.
        assert!(t64 > 0.9 * m.gpu_cellsteps_per_s);
        assert!(t16 < 0.5 * m.gpu_cellsteps_per_s);
    }

    #[test]
    fn summit_node_outruns_titan_node() {
        let t = MachineParams::titan();
        let s = MachineParams::summit();
        // At saturation a V100-class GPU is several times a K20X.
        let cells = 64f64.powi(3);
        let ratio = s.gpu_throughput(cells) / t.gpu_throughput(cells);
        assert!(ratio > 3.0 && ratio < 10.0, "Summit/Titan GPU ratio {ratio}");
        assert!(s.pcie_bw > t.pcie_bw);
        assert!(s.net_latency < t.net_latency);
    }

    #[test]
    fn calibration_from_kernel_stats_updates_both_march_rates() {
        let mut m = MachineParams::titan();
        // 1e6 invocations, 200 cell-steps each, over 0.5 s → 4e8 host
        // cell-steps/s; a 30x device multiplier puts the GPU at 1.2e10.
        let ks = KernelStats {
            launches: 8,
            invocations: 1_000_000,
            bytes_moved: 0,
            wall_ns: 500_000_000,
        };
        m.calibrate_from_kernel_stats(&ks, 200.0, 30.0);
        assert!((m.cpu_cellsteps_per_s - 4.0e8).abs() < 1.0);
        assert!((m.gpu_cellsteps_per_s - 1.2e10).abs() < 10.0);

        // Degenerate stats leave the pinned defaults untouched.
        let mut d = MachineParams::titan();
        d.calibrate_from_kernel_stats(&KernelStats::default(), 200.0, 30.0);
        assert!((d.gpu_cellsteps_per_s - MachineParams::titan().gpu_cellsteps_per_s).abs() < 1.0);
    }

    #[test]
    fn calibration_averages_across_fleet_devices() {
        let mut m = MachineParams::titan();
        // Device 0: 4e8 cellsteps/s; device 1: 2e8; device 2 idle (must be
        // excluded, not averaged in as zero). Mean of the live devices: 3e8.
        let per_device = [
            KernelStats {
                launches: 8,
                invocations: 1_000_000,
                bytes_moved: 0,
                wall_ns: 500_000_000,
            },
            KernelStats {
                launches: 8,
                invocations: 1_000_000,
                bytes_moved: 0,
                wall_ns: 1_000_000_000,
            },
            KernelStats::default(),
        ];
        m.calibrate_from_device_kernel_stats(&per_device, 200.0, 30.0);
        assert!((m.cpu_cellsteps_per_s - 3.0e8).abs() < 1.0, "{}", m.cpu_cellsteps_per_s);
        assert!((m.gpu_cellsteps_per_s - 9.0e9).abs() < 10.0);

        // All-degenerate fleets keep the pinned defaults.
        let mut d = MachineParams::titan();
        d.calibrate_from_device_kernel_stats(&[KernelStats::default(); 4], 200.0, 30.0);
        assert!((d.gpu_cellsteps_per_s - MachineParams::titan().gpu_cellsteps_per_s).abs() < 1.0);
    }

    #[test]
    fn pcie_calibration_from_engine_timeline() {
        let mut m = MachineParams::titan();
        // 80 MB drained in 10 ms of engine occupancy → 8 GB/s measured;
        // a 0.75 multiplier models the bus at 6 GB/s.
        m.calibrate_pcie_from_engine_timelines(
            80_000_000,
            std::time::Duration::from_millis(10),
            0.75,
        );
        assert!((m.pcie_bw - 6.0e9).abs() < 1.0, "pcie_bw {}", m.pcie_bw);

        // Degenerate timelines keep the pinned default.
        let mut d = MachineParams::titan();
        d.calibrate_pcie_from_engine_timelines(0, std::time::Duration::from_millis(1), 1.0);
        d.calibrate_pcie_from_engine_timelines(1000, std::time::Duration::ZERO, 1.0);
        assert!((d.pcie_bw - 6e9).abs() < 1.0);
    }

    #[test]
    fn titan_constants_match_paper_footnote() {
        let m = MachineParams::titan();
        assert_eq!(m.cpu_threads, 16);
        assert!((m.net_latency - 1.4e-6).abs() < 1e-12);
        assert!((m.injection_bw - 20e9).abs() < 1.0);
    }
}
