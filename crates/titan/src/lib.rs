//! Titan-scale performance model (experiments E2/E3: Figures 2 and 3).
//!
//! The paper's strong-scaling results run on 16–16,384 Titan nodes (one
//! K20X GPU each). We cannot run on Titan, so — per DESIGN.md §2 — this
//! crate *models* the machine and *executes* the real workload structure on
//! a virtual clock:
//!
//! * [`census`] computes, from the actual grid, patch distribution and task
//!   pipeline, exactly what one rank does in a radiation timestep: patches
//!   initialized, ghost messages, whole-level (all-to-all) messages and
//!   their byte volumes, kernels launched. It is cross-checked against the
//!   real `uintah-runtime` graph compiler in the test suite.
//! * [`machine`] holds the hardware constants (Titan numbers from the
//!   paper's footnote: Gemini 1.4 µs latency / 20 GB/s injection, PCIe gen2,
//!   16 Opteron cores, K20X throughput calibrated against our measured
//!   host ray-march rate — see EXPERIMENTS.md).
//! * [`sim`] is a discrete-event simulation of one representative rank's
//!   timestep: CPU lanes compute properties and post/process messages
//!   (with the request-store efficiency factor — mutex vs wait-free —
//!   taken from the measured microbenchmark), the NIC serializes arrivals,
//!   the two copy engines and the kernel engine pipeline GPU patch tasks.
//!
//! Absolute seconds are model outputs, not measurements; the *shape* —
//! patch-size ordering, scaling break, efficiency at 16k GPUs — is the
//! reproduction target.

pub mod census;
pub mod machine;
pub mod sim;

pub use census::{rank_census, RankCensus};
pub use machine::{CalibrationScale, MachineParams, StoreModel};
pub use sim::{simulate_timestep, Breakdown, CostProfile, ScalingPoint};
