//! Simulation configuration files.
//!
//! Uintah drives runs from `.ups` XML problem specifications; the
//! `rmcrt_app` binary uses the same idea at miniature scale with a plain
//! `key = value` format (one per line, `#` comments):
//!
//! ```text
//! # RMCRT benchmark run
//! problem    = benchmark
//! fine_cells = 64
//! patch_size = 16
//! levels     = 2
//! refinement_ratio = 4
//! nrays      = 100
//! threshold  = 0.05
//! halo       = 4
//! ranks      = 4
//! threads    = 2
//! store      = waitfree
//! gpu        = false
//! timesteps  = 1
//! sampling   = independent
//! output     = ./rmcrt.uda
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use std::str::FromStr;
use uintah_gpu::GpuAffinity;
use uintah_grid::RebalancePolicy;
use uintah_runtime::StoreKind;

/// A parsed run specification.
#[derive(Clone, Debug, PartialEq)]
pub struct RunConfig {
    pub problem: Problem,
    pub fine_cells: i32,
    pub patch_size: i32,
    pub levels: usize,
    pub refinement_ratio: i32,
    pub nrays: u32,
    pub threshold: f64,
    pub halo: i32,
    pub ranks: usize,
    pub threads: usize,
    pub store: StoreKind,
    pub gpu: bool,
    /// Simulated GPUs per rank (1 = Titan's single K20X, 6 = Summit-style).
    pub gpus_per_rank: usize,
    /// Patch→device affinity policy for multi-GPU ranks.
    pub gpu_affinity: GpuAffinity,
    /// Per-device memory capacity in MiB (default 6144 — the K20X's 6 GB).
    /// Problems larger than this per device exercise the oversubscription
    /// path: LRU eviction with spill-to-host.
    pub gpu_capacity_mb: usize,
    /// Device-memory eviction policy: `lru` (default) evicts
    /// least-recently-used DB entries under pressure; `off` fails hard at
    /// capacity (the pre-sub-allocator behaviour).
    pub gpu_eviction: bool,
    /// Upload pipeline: `async` (default) stages H2D copies through the
    /// pinned pool and posts them on the per-device copy engine, with
    /// cross-step prefetch; `sync` uploads inline on the posting thread
    /// (the bit-identical fallback).
    pub gpu_async_h2d: bool,
    pub timesteps: usize,
    pub sampling: rmcrt_core::RaySampling,
    /// `true` = adaptive per-cell ray counts ([`rmcrt_core::RayCountMode::Adaptive`]
    /// between `rays_min` and `rays_max`); `false` = fixed `nrays` per cell.
    pub adaptive_rays: bool,
    /// First batch size in adaptive mode.
    pub rays_min: u32,
    /// Ray budget ceiling per cell in adaptive mode.
    pub rays_max: u32,
    /// Adaptive stopping rule: stop when the standard error of the mean
    /// intensity falls below this fraction of its magnitude.
    pub rel_var_target: f64,
    /// Bundle level windows per rank pair (Uintah message packing).
    pub aggregate: bool,
    /// Rebalance ownership every `k` timesteps from measured per-patch
    /// costs; 0 disables regridding.
    pub regrid_interval: usize,
    /// Rebalance policy applied at each regrid interval.
    pub regrid_policy: RebalancePolicy,
    /// Queue tier when the config is submitted to the radiation server.
    pub priority: JobPriority,
    pub output: Option<PathBuf>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Problem {
    /// The Burns & Christon benchmark (the paper's workload).
    Benchmark,
}

/// Scheduling tier of a job submitted to the radiation server
/// (`uintah-serve`). High-priority jobs drain before any normal-tier job,
/// FIFO within each tier; a single-run `rmcrt_app` ignores it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JobPriority {
    #[default]
    Normal,
    High,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            problem: Problem::Benchmark,
            fine_cells: 32,
            patch_size: 8,
            levels: 2,
            refinement_ratio: 4,
            nrays: 64,
            threshold: 0.05,
            halo: 4,
            ranks: 2,
            threads: 2,
            store: StoreKind::WaitFree,
            gpu: false,
            gpus_per_rank: 1,
            gpu_affinity: GpuAffinity::Sticky,
            gpu_capacity_mb: 6144,
            gpu_eviction: true,
            gpu_async_h2d: true,
            timesteps: 1,
            sampling: rmcrt_core::RaySampling::Independent,
            adaptive_rays: false,
            rays_min: 16,
            rays_max: 1024,
            rel_var_target: 0.05,
            aggregate: false,
            regrid_interval: 0,
            regrid_policy: RebalancePolicy::CostedSfc,
            priority: JobPriority::Normal,
            output: None,
        }
    }
}

/// A configuration parse error with the offending line.
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

impl RunConfig {
    /// Parse from `key = value` text. Unknown keys are errors (typos should
    /// not silently change a run).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = RunConfig::default();
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line_no = ln + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("expected 'key = value', got '{line}'"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            if let Some(prev) = seen.insert(
                match key {
                    "problem" => "problem",
                    "fine_cells" => "fine_cells",
                    "patch_size" => "patch_size",
                    "levels" => "levels",
                    "refinement_ratio" => "refinement_ratio",
                    "nrays" => "nrays",
                    "threshold" => "threshold",
                    "halo" => "halo",
                    "ranks" => "ranks",
                    "threads" => "threads",
                    "store" => "store",
                    "gpu" => "gpu",
                    "gpus_per_rank" => "gpus_per_rank",
                    "gpu_affinity" => "gpu_affinity",
                    "gpu_capacity_mb" => "gpu_capacity_mb",
                    "gpu_eviction" => "gpu_eviction",
                    "gpu_h2d" => "gpu_h2d",
                    "aggregate" => "aggregate",
                    "regrid_interval" => "regrid_interval",
                    "regrid_policy" => "regrid_policy",
                    "timesteps" => "timesteps",
                    "sampling" => "sampling",
                    "ray_count" => "ray_count",
                    "rays_min" => "rays_min",
                    "rays_max" => "rays_max",
                    "rel_var_target" => "rel_var_target",
                    "priority" => "priority",
                    "output" => "output",
                    other => {
                        return Err(ConfigError {
                            line: line_no,
                            message: format!("unknown key '{other}'"),
                        })
                    }
                },
                line_no,
            ) {
                return Err(ConfigError {
                    line: line_no,
                    message: format!("duplicate key '{key}' (first on line {prev})"),
                });
            }
            let bad = |message: String| ConfigError {
                line: line_no,
                message,
            };
            fn num<T: FromStr>(value: &str, key: &str, line: usize) -> Result<T, ConfigError> {
                value.parse().map_err(|_| ConfigError {
                    line,
                    message: format!("invalid value '{value}' for {key}"),
                })
            }
            match key {
                "problem" => {
                    cfg.problem = match value {
                        "benchmark" => Problem::Benchmark,
                        v => return Err(bad(format!("unknown problem '{v}'"))),
                    }
                }
                "fine_cells" => cfg.fine_cells = num(value, key, line_no)?,
                "patch_size" => cfg.patch_size = num(value, key, line_no)?,
                "levels" => cfg.levels = num(value, key, line_no)?,
                "refinement_ratio" => cfg.refinement_ratio = num(value, key, line_no)?,
                "nrays" => cfg.nrays = num(value, key, line_no)?,
                "threshold" => cfg.threshold = num(value, key, line_no)?,
                "halo" => cfg.halo = num(value, key, line_no)?,
                "ranks" => cfg.ranks = num(value, key, line_no)?,
                "threads" => cfg.threads = num(value, key, line_no)?,
                "timesteps" => cfg.timesteps = num(value, key, line_no)?,
                "store" => {
                    cfg.store = match value {
                        "waitfree" => StoreKind::WaitFree,
                        "mutex" => StoreKind::Mutex,
                        "racy" => StoreKind::Racy,
                        v => return Err(bad(format!("unknown store '{v}'"))),
                    }
                }
                "gpu" => {
                    cfg.gpu = match value {
                        "true" | "yes" | "1" => true,
                        "false" | "no" | "0" => false,
                        v => return Err(bad(format!("invalid bool '{v}'"))),
                    }
                }
                "gpus_per_rank" => cfg.gpus_per_rank = num(value, key, line_no)?,
                "gpu_capacity_mb" => cfg.gpu_capacity_mb = num(value, key, line_no)?,
                "gpu_eviction" => {
                    cfg.gpu_eviction = match value {
                        "lru" => true,
                        "off" => false,
                        v => return Err(bad(format!("unknown gpu_eviction '{v}'"))),
                    }
                }
                "gpu_affinity" => {
                    cfg.gpu_affinity = match value {
                        "sticky" => GpuAffinity::Sticky,
                        "cost" | "cost_balanced" => GpuAffinity::CostBalanced,
                        v => return Err(bad(format!("unknown gpu_affinity '{v}'"))),
                    }
                }
                "gpu_h2d" => {
                    cfg.gpu_async_h2d = match value {
                        "async" => true,
                        "sync" => false,
                        v => return Err(bad(format!("unknown gpu_h2d '{v}'"))),
                    }
                }
                "aggregate" => {
                    cfg.aggregate = match value {
                        "true" | "yes" | "1" => true,
                        "false" | "no" | "0" => false,
                        v => return Err(bad(format!("invalid bool '{v}'"))),
                    }
                }
                "regrid_interval" => cfg.regrid_interval = num(value, key, line_no)?,
                "regrid_policy" => {
                    cfg.regrid_policy = match value {
                        "sfc" => RebalancePolicy::CostedSfc,
                        "lpt" => RebalancePolicy::CostedLpt,
                        "rotate" => RebalancePolicy::Rotate(1),
                        v => return Err(bad(format!("unknown regrid_policy '{v}'"))),
                    }
                }
                "sampling" => {
                    cfg.sampling = match value {
                        "independent" => rmcrt_core::RaySampling::Independent,
                        "lhc" | "latin_hypercube" => rmcrt_core::RaySampling::LatinHypercube,
                        v => return Err(bad(format!("unknown sampling '{v}'"))),
                    }
                }
                "ray_count" => {
                    cfg.adaptive_rays = match value {
                        "fixed" => false,
                        "adaptive" => true,
                        v => return Err(bad(format!("unknown ray_count '{v}'"))),
                    }
                }
                "rays_min" => cfg.rays_min = num(value, key, line_no)?,
                "rays_max" => cfg.rays_max = num(value, key, line_no)?,
                "rel_var_target" => cfg.rel_var_target = num(value, key, line_no)?,
                "priority" => {
                    cfg.priority = match value {
                        "normal" => JobPriority::Normal,
                        "high" => JobPriority::High,
                        v => return Err(bad(format!("unknown priority '{v}'"))),
                    }
                }
                "output" => cfg.output = Some(PathBuf::from(value)),
                _ => unreachable!("key validated above"),
            }
        }
        cfg.validate().map_err(|message| ConfigError { line: 0, message })?;
        Ok(cfg)
    }

    /// Cross-field validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.fine_cells <= 0 || self.patch_size <= 0 {
            return Err("fine_cells and patch_size must be positive".into());
        }
        if self.fine_cells % self.patch_size != 0 {
            return Err(format!(
                "patch_size {} does not divide fine_cells {}",
                self.patch_size, self.fine_cells
            ));
        }
        if self.levels == 0 || self.levels > 4 {
            return Err("levels must be 1..=4".into());
        }
        if self.levels >= 2 {
            let span = self.refinement_ratio.pow(self.levels as u32 - 1);
            if self.fine_cells % span != 0 {
                return Err(format!(
                    "fine_cells {} not divisible by refinement_ratio^(levels-1) = {span}",
                    self.fine_cells
                ));
            }
        }
        if self.ranks == 0 || self.threads == 0 {
            return Err("ranks and threads must be >= 1".into());
        }
        if self.gpus_per_rank == 0 {
            return Err("gpus_per_rank must be >= 1".into());
        }
        if self.gpu_capacity_mb == 0 {
            return Err("gpu_capacity_mb must be >= 1".into());
        }
        if self.nrays == 0 {
            return Err("nrays must be >= 1".into());
        }
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err("threshold must be in (0, 1)".into());
        }
        if self.adaptive_rays {
            if self.rays_min == 0 {
                return Err("rays_min must be >= 1".into());
            }
            if self.rays_min > self.rays_max {
                return Err(format!(
                    "rays_min {} exceeds rays_max {}",
                    self.rays_min, self.rays_max
                ));
            }
            if !(self.rel_var_target > 0.0 && self.rel_var_target < 1.0) {
                return Err("rel_var_target must be in (0, 1)".into());
            }
        }
        Ok(())
    }

    /// Materialize the configured problem: the AMR grid and the task
    /// declarations of the selected pipeline. The one construction path
    /// shared by `rmcrt_app` (single run) and `uintah-serve` (per job), so
    /// a job served over the wire is guaranteed to solve exactly what a
    /// standalone run of the same config would.
    pub fn build_problem(
        &self,
    ) -> (
        std::sync::Arc<uintah_grid::Grid>,
        std::sync::Arc<Vec<uintah_runtime::TaskDecl>>,
    ) {
        use std::sync::Arc;
        let Problem::Benchmark = self.problem;
        let grid = Arc::new(
            uintah_grid::Grid::builder()
                .fine_cells(uintah_grid::IntVector::splat(self.fine_cells))
                .num_levels(self.levels)
                .refinement_ratio(self.refinement_ratio)
                .fine_patch_size(uintah_grid::IntVector::splat(self.patch_size))
                .build(),
        );
        let pipeline = rmcrt_core::tasks::RmcrtPipeline {
            params: rmcrt_core::RmcrtParams {
                nrays: self.nrays,
                threshold: self.threshold,
                sampling: self.sampling,
                ray_count: Some(self.ray_count()),
                ..Default::default()
            },
            halo: self.halo,
            problem: rmcrt_core::BurnsChriston::default(),
        };
        let decls = Arc::new(if self.levels >= 2 {
            rmcrt_core::tasks::multilevel_decls(&grid, pipeline, self.gpu)
        } else {
            rmcrt_core::tasks::single_level_decls(&grid, pipeline, self.gpu)
        });
        (grid, decls)
    }

    /// The [`uintah_runtime::WorldConfig`] this run configuration selects
    /// (ranks, threads, store, GPU fleet shape, regrid schedule).
    pub fn world_config(&self) -> uintah_runtime::WorldConfig {
        uintah_runtime::WorldConfig {
            nranks: self.ranks,
            nthreads: self.threads,
            store: self.store,
            timesteps: self.timesteps,
            gpu_capacity: self.gpu.then_some(self.gpu_capacity_mb << 20),
            gpus_per_rank: self.gpus_per_rank,
            gpu_affinity: self.gpu_affinity,
            gpu_eviction: self.gpu_eviction,
            gpu_async_h2d: self.gpu_async_h2d,
            aggregate_level_windows: self.aggregate,
            regrid_interval: (self.regrid_interval > 0).then_some(self.regrid_interval),
            regrid_policy: self.regrid_policy,
            ..Default::default()
        }
    }

    /// The ray-count policy this configuration selects.
    pub fn ray_count(&self) -> rmcrt_core::RayCountMode {
        if self.adaptive_rays {
            rmcrt_core::RayCountMode::Adaptive {
                min: self.rays_min,
                max: self.rays_max,
                rel_var_target: self.rel_var_target,
            }
        } else {
            rmcrt_core::RayCountMode::Fixed(self.nrays)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = "
            # a comment
            problem = benchmark
            fine_cells = 64   # trailing comment
            patch_size = 16
            levels = 2
            refinement_ratio = 4
            nrays = 100
            threshold = 0.05
            halo = 4
            ranks = 4
            threads = 2
            store = mutex
            gpu = true
            timesteps = 3
            sampling = lhc
            output = /tmp/x.uda
        ";
        let cfg = RunConfig::parse(text).unwrap();
        assert_eq!(cfg.fine_cells, 64);
        assert_eq!(cfg.store, StoreKind::Mutex);
        assert!(cfg.gpu);
        assert_eq!(cfg.sampling, rmcrt_core::RaySampling::LatinHypercube);
        assert_eq!(cfg.output, Some(PathBuf::from("/tmp/x.uda")));
        assert_eq!(cfg.timesteps, 3);
    }

    #[test]
    fn defaults_apply_for_missing_keys() {
        let cfg = RunConfig::parse("nrays = 8").unwrap();
        assert_eq!(cfg.nrays, 8);
        assert_eq!(cfg.ranks, RunConfig::default().ranks);
    }

    #[test]
    fn unknown_key_rejected_with_line() {
        let err = RunConfig::parse("nrayz = 8").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown key"));
    }

    #[test]
    fn parses_regrid_keys() {
        let cfg = RunConfig::parse("regrid_interval = 5\nregrid_policy = lpt").unwrap();
        assert_eq!(cfg.regrid_interval, 5);
        assert_eq!(cfg.regrid_policy, RebalancePolicy::CostedLpt);
        let cfg = RunConfig::parse("regrid_policy = rotate").unwrap();
        assert_eq!(cfg.regrid_policy, RebalancePolicy::Rotate(1));
        assert_eq!(cfg.regrid_interval, 0, "regridding off by default");
        assert!(RunConfig::parse("regrid_policy = magic").is_err());
    }

    #[test]
    fn parses_fleet_keys() {
        let cfg = RunConfig::parse("gpus_per_rank = 6\ngpu_affinity = cost").unwrap();
        assert_eq!(cfg.gpus_per_rank, 6);
        assert_eq!(cfg.gpu_affinity, GpuAffinity::CostBalanced);
        let cfg = RunConfig::parse("gpu_affinity = sticky").unwrap();
        assert_eq!(cfg.gpu_affinity, GpuAffinity::Sticky);
        assert_eq!(cfg.gpus_per_rank, 1, "single K20X per rank by default");
        assert!(RunConfig::parse("gpu_affinity = roundrobin").is_err());
        assert!(RunConfig::parse("gpus_per_rank = 0").is_err());
        // Oversubscription keys: capacity in MiB and the eviction policy.
        assert_eq!(cfg.gpu_capacity_mb, 6144, "K20X 6 GB by default");
        assert!(cfg.gpu_eviction, "LRU eviction on by default");
        let cfg = RunConfig::parse("gpu_capacity_mb = 512\ngpu_eviction = off").unwrap();
        assert_eq!(cfg.gpu_capacity_mb, 512);
        assert!(!cfg.gpu_eviction);
        let cfg = RunConfig::parse("gpu_eviction = lru").unwrap();
        assert!(cfg.gpu_eviction);
        assert!(RunConfig::parse("gpu_eviction = maybe").is_err());
        assert!(RunConfig::parse("gpu_capacity_mb = 0").is_err());
    }

    #[test]
    fn parses_ray_count_keys() {
        let cfg = RunConfig::parse(
            "ray_count = adaptive\nrays_min = 8\nrays_max = 512\nrel_var_target = 0.02",
        )
        .unwrap();
        assert!(cfg.adaptive_rays);
        assert_eq!(
            cfg.ray_count(),
            rmcrt_core::RayCountMode::Adaptive {
                min: 8,
                max: 512,
                rel_var_target: 0.02
            }
        );
        let cfg = RunConfig::parse("ray_count = fixed\nnrays = 40").unwrap();
        assert_eq!(cfg.ray_count(), rmcrt_core::RayCountMode::Fixed(40));
        assert_eq!(
            RunConfig::default().ray_count(),
            rmcrt_core::RayCountMode::Fixed(RunConfig::default().nrays),
            "fixed mode is the default"
        );
        assert!(RunConfig::parse("ray_count = magic").is_err());
        assert!(RunConfig::parse("ray_count = adaptive\nrays_min = 99\nrays_max = 10").is_err());
        assert!(RunConfig::parse("ray_count = adaptive\nrel_var_target = 2.0").is_err());
    }

    #[test]
    fn parses_priority_key() {
        assert_eq!(RunConfig::default().priority, JobPriority::Normal);
        let cfg = RunConfig::parse("priority = high").unwrap();
        assert_eq!(cfg.priority, JobPriority::High);
        let cfg = RunConfig::parse("priority = normal").unwrap();
        assert_eq!(cfg.priority, JobPriority::Normal);
        assert!(RunConfig::parse("priority = urgent").is_err());
    }

    #[test]
    fn build_problem_matches_manual_construction() {
        let cfg = RunConfig::parse("fine_cells = 16\npatch_size = 4\nlevels = 2").unwrap();
        let (grid, decls) = cfg.build_problem();
        assert_eq!(grid.num_levels(), 2);
        assert_eq!(grid.fine_level().cell_region().extent().x, 16);
        assert!(!decls.is_empty());
        let wc = cfg.world_config();
        assert_eq!(wc.nranks, cfg.ranks);
        assert_eq!(wc.nthreads, cfg.threads);
        assert_eq!(wc.gpu_capacity, None, "gpu off by default");
        let gcfg = RunConfig::parse("gpu = true\ngpu_capacity_mb = 64").unwrap();
        assert_eq!(gcfg.world_config().gpu_capacity, Some(64 << 20));
    }

    #[test]
    fn duplicate_key_rejected() {
        let err = RunConfig::parse("nrays = 8\nnrays = 9").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn bad_value_rejected() {
        assert!(RunConfig::parse("nrays = many").is_err());
        assert!(RunConfig::parse("gpu = perhaps").is_err());
        assert!(RunConfig::parse("store = spinlock").is_err());
    }

    #[test]
    fn cross_field_validation() {
        // Patch size must divide cells.
        assert!(RunConfig::parse("fine_cells = 30\npatch_size = 8").is_err());
        // RR^levels must divide cells.
        assert!(RunConfig::parse("fine_cells = 24\npatch_size = 8\nlevels = 2\nrefinement_ratio = 16").is_err());
        // Valid baseline passes.
        assert!(RunConfig::parse("fine_cells = 32\npatch_size = 8").is_ok());
    }
}
