//! `rmcrt_app` — the miniature `sus`: run an RMCRT simulation from a
//! config file and (optionally) archive the results.
//!
//! ```text
//! cargo run --release --bin rmcrt_app -- path/to/run.cfg
//! cargo run --release --bin rmcrt_app -- --print-default-config
//! ```

use std::sync::Arc;
use uintah::config::RunConfig;
use uintah::prelude::*;
use uintah::runtime::DataArchive;

fn main() {
    let arg = std::env::args().nth(1);
    let cfg = match arg.as_deref() {
        Some("--print-default-config") => {
            print_default();
            return;
        }
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            RunConfig::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(1);
            })
        }
        None => {
            eprintln!("usage: rmcrt_app <config-file> | --print-default-config");
            std::process::exit(2);
        }
    };

    // One shared construction path with the radiation server: the grid,
    // pipeline and world shape all come from the config helpers.
    let (grid, decls) = cfg.build_problem();

    println!(
        "rmcrt_app: {} levels, fine {}³ ({} patches of {}³), {} ranks × {} threads, {} rays/cell{}",
        grid.num_levels(),
        cfg.fine_cells,
        grid.fine_level().num_patches(),
        cfg.patch_size,
        cfg.ranks,
        cfg.threads,
        cfg.nrays,
        if cfg.gpu { ", GPU" } else { "" },
    );
    let t0 = std::time::Instant::now();
    let result = run_world(Arc::clone(&grid), decls, cfg.world_config());
    println!(
        "done in {:.2?}: {} messages, {} payload bytes across ranks/timesteps",
        t0.elapsed(),
        result.total_messages(),
        result.total_bytes()
    );

    // Aggregate divQ stats.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0usize;
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ computed");
            for &x in v.as_f64().as_slice() {
                min = min.min(x);
                max = max.max(x);
                sum += x;
                count += 1;
            }
        }
    }
    println!(
        "divQ over {} fine cells: min {:+.4}  mean {:+.4}  max {:+.4} (W/m³)",
        count,
        min,
        sum / count as f64,
        max
    );

    if let Some(out) = &cfg.output {
        let archive = DataArchive::create(out).unwrap_or_else(|e| {
            eprintln!("cannot create archive {}: {e}", out.display());
            std::process::exit(1);
        });
        let ts = (cfg.timesteps - 1) as u32;
        let mut pieces = 0;
        for rr in &result.ranks {
            for &pid in result.dist.owned_by(rr.rank) {
                if grid.patch(pid).level_index() != grid.fine_level_index() {
                    continue;
                }
                let v = rr.dw.get_patch(DIVQ, pid).unwrap();
                archive.save_field(ts, DIVQ, pid.0, &v).unwrap();
                pieces += 1;
            }
        }
        println!("archived {pieces} divQ pieces to {}", out.display());
    }
}

fn print_default() {
    println!(
        "\
# rmcrt_app configuration (defaults shown)
problem    = benchmark
fine_cells = 32
patch_size = 8
levels     = 2
refinement_ratio = 4
nrays      = 64
threshold  = 0.05
halo       = 4
ranks      = 2
threads    = 2
store      = waitfree     # waitfree | mutex | racy
gpu        = false
gpus_per_rank = 1         # simulated GPUs per rank (6 = Summit-style)
gpu_affinity  = sticky    # sticky | cost (LPT from measured per-patch costs)
gpu_capacity_mb = 6144    # per-device memory budget (6144 = K20X 6 GB)
gpu_eviction  = lru       # lru (spill-to-host oversubscription) | off (hard OOM)
gpu_h2d       = async     # async (staged uploads + cross-step prefetch) | sync
aggregate  = false        # bundle level windows per rank pair
timesteps  = 1
sampling   = independent  # independent | lhc
ray_count  = fixed        # fixed (nrays per cell) | adaptive
rays_min   = 16           # adaptive: first batch size
rays_max   = 1024         # adaptive: per-cell ray budget ceiling
rel_var_target = 0.05     # adaptive: stop when sem(I) <= target * |mean I|
priority   = normal       # queue tier under uintah-serve: normal | high
#output    = ./rmcrt.uda"
    );
}
