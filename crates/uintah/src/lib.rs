//! Facade crate for the RMCRT-AMR stack: one `use uintah::prelude::*`
//! brings in the grid, runtime, communication, memory, GPU-model, RMCRT
//! and Titan-model APIs.
//!
//! The stack reproduces Humphrey, Harman, Sunderland & Berzins,
//! *"Radiative Heat Transfer Calculation on 16384 GPUs Using a Reverse
//! Monte Carlo Ray Tracing Approach with Adaptive Mesh Refinement"*
//! (IPDPS Workshops 2016). See README.md for the architecture tour and
//! EXPERIMENTS.md for the per-figure reproduction record.

pub mod config;
pub mod viz;

pub use arches_lite as arches;
pub use rmcrt_core as rmcrt;
pub use titan_sim as titan;
pub use uintah_comm as comm;
pub use uintah_exec as exec;
pub use uintah_gpu as gpu;
pub use uintah_grid as grid;
pub use uintah_mem as mem;
pub use uintah_runtime as runtime;

/// The most commonly used types across the stack.
pub mod prelude {
    pub use arches_lite::{BoilerSetup, EnergySolver, RadiationCoupler};
    pub use rmcrt_core::labels::{ABSKG, CELLTYPE, DIVQ, SIGMA_T4_OVER_PI};
    pub use rmcrt_core::tasks::{
        multilevel_decls, reference_multilevel, reference_single_level, single_level_decls,
        RmcrtPipeline,
    };
    pub use rmcrt_core::{
        div_q_for_cell, solve_region, solve_region_exec, solve_region_with_stats, trace_ray,
        BurnsChriston, CellRng, LevelProps, PacketTracer, RayCountMode, RayPacket, RmcrtParams,
        SolveStats, TraceLevel,
    };
    pub use titan_sim::{
        simulate_timestep, CalibrationScale, CostProfile, MachineParams, StoreModel,
    };
    pub use uintah_comm::{CommWorld, Communicator, Tag, WaitFreePool};
    pub use uintah_exec::{
        ops, parallel_fill, parallel_for, parallel_map, parallel_reduce, DeviceSpace, ExecSpace,
        KernelStats,
    };
    pub use uintah_gpu::{
        DeviceCounters, DeviceFleet, GpuAffinity, GpuDataWarehouse, GpuDevice,
    };
    pub use uintah_grid::{
        CcVariable, DistributionPolicy, FieldData, Grid, IntVector, PatchCosts,
        PatchDistribution, Point, RebalancePolicy, Region, Regridder, VarLabel, Vector,
    };
    pub use uintah_runtime::{
        run_world, CalibrationSnapshot, DeviceStepStats, RegridEvent, StoreKind, WorldConfig,
        WorldResult,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_every_crate() {
        use crate::prelude::*;
        let grid = BurnsChriston::small_grid(8, 4);
        assert_eq!(grid.num_levels(), 2);
        let dev = GpuDevice::k20x();
        assert!(dev.capacity() > 0);
        let pool: WaitFreePool<u32> = WaitFreePool::new();
        pool.insert(1);
        assert_eq!(pool.len(), 1);
    }
}
