//! Lightweight field visualization: 2-D slices of cell-centred fields as
//! CSV (for plotting) or PPM images (for a quick look), the miniature
//! stand-in for Uintah's VisIt output path.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use uintah_grid::{CcVariable, IntVector};

/// Extract the 2-D slice of `var` at `index` along `axis`
/// (0 = x, 1 = y, 2 = z). Returns `(rows, cols, values)` with values in
/// row-major order; the two remaining axes keep their natural order.
pub fn slice(var: &CcVariable<f64>, axis: usize, index: i32) -> (usize, usize, Vec<f64>) {
    assert!(axis < 3, "axis must be 0..3");
    let r = var.region();
    assert!(
        index >= r.lo()[axis] && index < r.hi()[axis],
        "slice index {index} outside axis range"
    );
    let (a1, a2) = match axis {
        0 => (1, 2),
        1 => (0, 2),
        _ => (0, 1),
    };
    let rows = r.extent()[a2] as usize;
    let cols = r.extent()[a1] as usize;
    let mut out = Vec::with_capacity(rows * cols);
    for j in r.lo()[a2]..r.hi()[a2] {
        for i in r.lo()[a1]..r.hi()[a1] {
            let mut c = IntVector::ZERO;
            c[axis] = index;
            c[a1] = i;
            c[a2] = j;
            out.push(var[c]);
        }
    }
    (rows, cols, out)
}

/// Write a slice as CSV (one row per line).
pub fn write_slice_csv(path: impl AsRef<Path>, var: &CcVariable<f64>, axis: usize, index: i32) -> io::Result<()> {
    let (rows, cols, vals) = slice(var, axis, index);
    let mut w = BufWriter::new(File::create(path)?);
    for rrow in 0..rows {
        let line: Vec<String> = (0..cols)
            .map(|c| format!("{}", vals[rrow * cols + c]))
            .collect();
        writeln!(w, "{}", line.join(","))?;
    }
    w.flush()
}

/// A five-stop heat colormap (dark blue → cyan → green → yellow → red).
fn colormap(t: f64) -> [u8; 3] {
    const STOPS: [(f64, [f64; 3]); 5] = [
        (0.00, [13.0, 8.0, 135.0]),
        (0.25, [84.0, 2.0, 163.0]),
        (0.50, [219.0, 92.0, 104.0]),
        (0.75, [249.0, 164.0, 63.0]),
        (1.00, [240.0, 249.0, 33.0]),
    ];
    let t = t.clamp(0.0, 1.0);
    let mut out = [0u8; 3];
    for k in 0..4 {
        let (t0, c0) = STOPS[k];
        let (t1, c1) = STOPS[k + 1];
        if t <= t1 || k == 3 {
            let f = ((t - t0) / (t1 - t0)).clamp(0.0, 1.0);
            for (o, (a, b)) in out.iter_mut().zip(c0.iter().zip(c1.iter())) {
                *o = (a + f * (b - a)).round() as u8;
            }
            return out;
        }
    }
    out
}

/// Write a slice as a binary PPM (P6) image, auto-scaled to the slice's
/// min/max. Returns the `(min, max)` used for the scale.
pub fn write_slice_ppm(
    path: impl AsRef<Path>,
    var: &CcVariable<f64>,
    axis: usize,
    index: i32,
) -> io::Result<(f64, f64)> {
    let (rows, cols, vals) = slice(var, axis, index);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in &vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut w = BufWriter::new(File::create(path)?);
    write!(w, "P6\n{cols} {rows}\n255\n")?;
    // Image rows top-to-bottom = slice rows reversed (y up).
    for rrow in (0..rows).rev() {
        for c in 0..cols {
            let t = (vals[rrow * cols + c] - lo) / span;
            w.write_all(&colormap(t))?;
        }
    }
    w.flush()?;
    Ok((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uintah_grid::Region;

    fn field() -> CcVariable<f64> {
        let mut v = CcVariable::<f64>::new(Region::cube(4));
        v.fill_with(|c| (c.x + 10 * c.y + 100 * c.z) as f64);
        v
    }

    #[test]
    fn slice_extracts_the_right_plane() {
        let v = field();
        let (rows, cols, vals) = slice(&v, 2, 1); // z = 1 plane
        assert_eq!((rows, cols), (4, 4));
        // vals[row=y][col=x] = x + 10y + 100
        assert_eq!(vals[0], 100.0);
        assert_eq!(vals[1], 101.0);
        assert_eq!(vals[4], 110.0);
        let (_, _, xs) = slice(&v, 0, 3); // x = 3 plane: rows=z, cols=y
        assert_eq!(xs[0], 3.0);
        assert_eq!(xs[1], 13.0);
    }

    #[test]
    #[should_panic(expected = "outside axis range")]
    fn out_of_range_slice_rejected() {
        slice(&field(), 2, 9);
    }

    #[test]
    fn csv_roundtrip() {
        let v = field();
        let path = std::env::temp_dir().join(format!("rmcrt_viz_{}.csv", std::process::id()));
        write_slice_csv(&path, &v, 2, 0).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let rows: Vec<&str> = text.lines().collect();
        assert_eq!(rows.len(), 4);
        let first: Vec<f64> = rows[0].split(',').map(|s| s.parse().unwrap()).collect();
        assert_eq!(first, vec![0.0, 1.0, 2.0, 3.0]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn ppm_has_correct_header_and_size() {
        let v = field();
        let path = std::env::temp_dir().join(format!("rmcrt_viz_{}.ppm", std::process::id()));
        let (lo, hi) = write_slice_ppm(&path, &v, 1, 2).unwrap();
        assert!(lo < hi);
        let bytes = std::fs::read(&path).unwrap();
        let header = b"P6\n4 4\n255\n";
        assert_eq!(&bytes[..header.len()], header);
        assert_eq!(bytes.len(), header.len() + 4 * 4 * 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn colormap_ends_and_monotone_red() {
        assert_eq!(colormap(0.0), [13, 8, 135]);
        assert_eq!(colormap(1.0), [240, 249, 33]);
        // Red channel grows monotonically through the first four stops
        // (it dips slightly into the final yellow, as in plasma).
        let mut prev = 0u8;
        for i in 0..=15 {
            let c = colormap(i as f64 * 0.05);
            assert!(c[0] >= prev, "red not monotone at {i}");
            prev = c[0];
        }
    }
}
