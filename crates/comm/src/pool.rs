//! The wait-free communication-request pool (the paper's Algorithm 1).
//!
//! Replaces a mutex-protected `vector<MPI_Request>` + `MPI_Testsome()` with
//! a non-blocking, thread-scalable, contention-free pool:
//!
//! * storage is a lock-free linked list of fixed-size chunks of slots;
//! * each slot carries an atomic state (`EMPTY → WRITING → READY ⇄ CLAIMED`);
//! * [`WaitFreePool::find_any`] claims a slot by toggling `READY → CLAIMED`
//!   with a single CAS and hands back a **move-only** [`PoolIterator`]
//!   (copy/clone disabled), guaranteeing "no two threads can have iterators
//!   which dereference to the same object";
//! * the predicate (in Uintah, `MPI_Test` on the individual request) runs on
//!   the *claimed* slot, so no other thread can observe or process it;
//! * `erase` removes the value and recycles the slot; dropping an iterator
//!   without erasing releases the claim.
//!
//! Per-slot transitions are single CASes (wait-free); scans and inserts are
//! lock-free (a failed CAS always means another thread succeeded).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ops::Deref;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU8, AtomicUsize, Ordering};

const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const READY: u8 = 2;
const CLAIMED: u8 = 3;

/// Slots per chunk. 64 keeps a chunk within a few cache lines of states
/// while amortizing allocation.
const CHUNK_SLOTS: usize = 64;

struct Slot<T> {
    state: AtomicU8,
    value: UnsafeCell<MaybeUninit<T>>,
}

impl<T> Slot<T> {
    fn new() -> Self {
        Self {
            state: AtomicU8::new(EMPTY),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

struct Chunk<T> {
    slots: Box<[Slot<T>]>,
    next: AtomicPtr<Chunk<T>>,
}

impl<T> Chunk<T> {
    fn boxed() -> Box<Self> {
        Box::new(Self {
            slots: (0..CHUNK_SLOTS).map(|_| Slot::new()).collect(),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }
}

/// A non-blocking, thread-scalable, contention-free pool (Algorithm 1).
///
/// ```
/// use uintah_comm::WaitFreePool;
///
/// let pool = WaitFreePool::new();
/// pool.insert(41);
/// pool.insert(42);
/// // Claim any element matching a predicate (MPI_Test in Uintah) ...
/// let it = pool.find_any(|&v| v % 2 == 0).expect("42 is there");
/// assert_eq!(*it, 42);
/// // ... and erase it through the move-only iterator.
/// assert_eq!(pool.erase(it), 42);
/// assert_eq!(pool.len(), 1);
/// ```
pub struct WaitFreePool<T> {
    head: AtomicPtr<Chunk<T>>,
    len: AtomicUsize,
}

// SAFETY: values are moved in by one thread and observed/claimed by others
// through the state protocol; &T is handed out, hence T: Sync as well.
unsafe impl<T: Send + Sync> Send for WaitFreePool<T> {}
unsafe impl<T: Send + Sync> Sync for WaitFreePool<T> {}

impl<T: Send + Sync> Default for WaitFreePool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync> WaitFreePool<T> {
    pub fn new() -> Self {
        Self {
            head: AtomicPtr::new(Box::into_raw(Chunk::boxed())),
            len: AtomicUsize::new(0),
        }
    }

    /// Number of stored values (READY or CLAIMED).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a value. Lock-free; grows by one chunk when all slots are
    /// occupied.
    pub fn insert(&self, value: T) {
        let mut chunk_ptr = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: chunk pointers are never freed while the pool lives.
            let chunk = unsafe { &*chunk_ptr };
            for slot in chunk.slots.iter() {
                if slot.state.load(Ordering::Relaxed) == EMPTY
                    && slot
                        .state
                        .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    // SAFETY: WRITING grants exclusive access to the cell.
                    unsafe { (*slot.value.get()).write(value) };
                    slot.state.store(READY, Ordering::Release);
                    self.len.fetch_add(1, Ordering::Release);
                    return;
                }
            }
            // Advance to (or install) the next chunk.
            let next = chunk.next.load(Ordering::Acquire);
            if next.is_null() {
                let fresh = Box::into_raw(Chunk::boxed());
                match chunk.next.compare_exchange(
                    ptr::null_mut(),
                    fresh,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => chunk_ptr = fresh,
                    Err(winner) => {
                        // SAFETY: we just created `fresh` and nobody saw it.
                        drop(unsafe { Box::from_raw(fresh) });
                        chunk_ptr = winner;
                    }
                }
            } else {
                chunk_ptr = next;
            }
            // Loop re-scans from the new chunk; `value` still pending.
        }
    }

    /// Find any stored value satisfying `pred`, claiming it exclusively.
    ///
    /// `pred` runs with the slot claimed: no other thread can test, claim or
    /// erase it concurrently. Returns a move-only iterator on a hit; slots
    /// failing the predicate are released back to READY.
    pub fn find_any<F: FnMut(&T) -> bool>(&self, mut pred: F) -> Option<PoolIterator<'_, T>> {
        let mut chunk_ptr = self.head.load(Ordering::Acquire);
        while !chunk_ptr.is_null() {
            // SAFETY: chunk pointers live as long as the pool.
            let chunk = unsafe { &*chunk_ptr };
            for slot in chunk.slots.iter() {
                if slot.state.load(Ordering::Relaxed) == READY
                    && slot
                        .state
                        .compare_exchange(READY, CLAIMED, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    // SAFETY: CLAIMED + initialized (READY implies written).
                    let value = unsafe { (*slot.value.get()).assume_init_ref() };
                    if pred(value) {
                        return Some(PoolIterator { pool: self, slot });
                    }
                    slot.state.store(READY, Ordering::Release);
                }
            }
            chunk_ptr = chunk.next.load(Ordering::Acquire);
        }
        None
    }

    /// Erase a previously claimed slot, returning its value.
    pub fn erase(&self, iter: PoolIterator<'_, T>) -> T {
        debug_assert!(ptr::eq(iter.pool, self), "iterator from another pool");
        let slot = iter.slot;
        std::mem::forget(iter); // suppress the release-on-drop
        // SAFETY: the iterator held the claim; value is initialized.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        slot.state.store(EMPTY, Ordering::Release);
        self.len.fetch_sub(1, Ordering::Release);
        value
    }

    /// Drain every value satisfying `pred`, invoking `f` on each, until a
    /// full scan finds no match. Returns the number processed.
    pub fn drain_matching<P: FnMut(&T) -> bool, F: FnMut(T)>(&self, mut pred: P, mut f: F) -> usize {
        let mut n = 0;
        while let Some(it) = self.find_any(&mut pred) {
            f(self.erase(it));
            n += 1;
        }
        n
    }
}

impl<T> Drop for WaitFreePool<T> {
    fn drop(&mut self) {
        let mut chunk_ptr = *self.head.get_mut();
        while !chunk_ptr.is_null() {
            // SAFETY: exclusive access in Drop; chunks were Box-allocated.
            let mut chunk = unsafe { Box::from_raw(chunk_ptr) };
            for slot in chunk.slots.iter_mut() {
                let state = *slot.state.get_mut();
                debug_assert_ne!(state, CLAIMED, "pool dropped with live iterator");
                if state == READY || state == CLAIMED {
                    // SAFETY: READY means initialized; we own everything now.
                    unsafe { (*slot.value.get()).assume_init_drop() };
                }
            }
            chunk_ptr = *chunk.next.get_mut();
        }
    }
}

/// A unique, move-only handle to a claimed pool slot.
///
/// Mirrors the paper's "unique protected iterator": copy construction and
/// copy assignment are disabled (no `Clone`), so no two threads can hold
/// iterators dereferencing to the same object. Dropping the iterator
/// releases the claim; [`WaitFreePool::erase`] consumes it and the value.
pub struct PoolIterator<'a, T> {
    pool: &'a WaitFreePool<T>,
    slot: &'a Slot<T>,
}

impl<T> Deref for PoolIterator<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: we hold the CLAIMED state; the value is initialized.
        unsafe { (*self.slot.value.get()).assume_init_ref() }
    }
}

impl<T> Drop for PoolIterator<'_, T> {
    fn drop(&mut self) {
        self.slot.state.store(READY, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn insert_find_erase() {
        let pool = WaitFreePool::new();
        pool.insert(41);
        pool.insert(42);
        assert_eq!(pool.len(), 2);
        let it = pool.find_any(|&v| v == 42).expect("42 present");
        assert_eq!(*it, 42);
        assert_eq!(pool.erase(it), 42);
        assert_eq!(pool.len(), 1);
        assert!(pool.find_any(|&v| v == 42).is_none());
    }

    #[test]
    fn released_iterator_returns_slot() {
        let pool = WaitFreePool::new();
        pool.insert(7);
        {
            let it = pool.find_any(|_| true).unwrap();
            assert_eq!(*it, 7);
            // Dropped without erase: claim released.
        }
        assert_eq!(pool.len(), 1);
        assert!(pool.find_any(|&v| v == 7).is_some());
    }

    #[test]
    fn claimed_slot_invisible_to_others() {
        let pool = WaitFreePool::new();
        pool.insert(1);
        let it = pool.find_any(|_| true).unwrap();
        // While claimed, a second find_any must not see the value.
        assert!(pool.find_any(|_| true).is_none());
        drop(it);
        assert!(pool.find_any(|_| true).is_some());
    }

    #[test]
    fn grows_past_one_chunk() {
        let pool = WaitFreePool::new();
        let n = CHUNK_SLOTS * 3 + 5;
        for i in 0..n {
            pool.insert(i);
        }
        assert_eq!(pool.len(), n);
        let mut seen = vec![false; n];
        let drained = pool.drain_matching(|_| true, |v| seen[v] = true);
        assert_eq!(drained, n);
        assert!(seen.iter().all(|&s| s));
        assert!(pool.is_empty());
    }

    #[test]
    fn slot_reuse_after_erase() {
        let pool = WaitFreePool::new();
        for round in 0..10 {
            for i in 0..CHUNK_SLOTS {
                pool.insert(round * 1000 + i);
            }
            assert_eq!(pool.drain_matching(|_| true, |_| ()), CHUNK_SLOTS);
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn drop_releases_unclaimed_values() {
        // Values with Drop side effects are dropped with the pool.
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let pool = WaitFreePool::new();
            for _ in 0..5 {
                pool.insert(D);
            }
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_producers_consumers_exactly_once() {
        // N producers insert distinct values; M consumers claim-and-erase.
        // Every value must be processed exactly once — the invariant the
        // paper's racy Testsome loop violated.
        let pool = std::sync::Arc::new(WaitFreePool::new());
        const PER: usize = 2000;
        const PRODUCERS: usize = 4;
        let processed: Vec<AtomicUsize> = (0..PER * PRODUCERS).map(|_| AtomicUsize::new(0)).collect();
        let processed = std::sync::Arc::new(processed);
        let total = std::sync::Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let pool = pool.clone();
                s.spawn(move || {
                    for i in 0..PER {
                        pool.insert(p * PER + i);
                    }
                });
            }
            for _ in 0..4 {
                let pool = pool.clone();
                let processed = processed.clone();
                let total = total.clone();
                s.spawn(move || {
                    while total.load(Ordering::Relaxed) < PER * PRODUCERS {
                        let n = pool.drain_matching(
                            |_| true,
                            |v| {
                                processed[v].fetch_add(1, Ordering::Relaxed);
                            },
                        );
                        if n == 0 {
                            std::thread::yield_now();
                        } else {
                            total.fetch_add(n, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        for (i, c) in processed.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {i} processed {} times", c.load(Ordering::Relaxed));
        }
        assert!(pool.is_empty());
    }

    #[test]
    fn predicate_false_leaves_value_in_place() {
        let pool = WaitFreePool::new();
        pool.insert(1);
        pool.insert(2);
        assert!(pool.find_any(|&v| v > 5).is_none());
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.drain_matching(|&v| v == 1, |_| ()), 1);
        assert_eq!(pool.len(), 1);
    }
}
