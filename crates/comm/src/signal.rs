//! Per-rank work-arrival signal used to park idle scheduler workers.
//!
//! The hybrid scheduler's workers are self-servicing (`MPI_THREAD_MULTIPLE`
//! style): each thread polls its rank's request store for completed receives
//! and pops the ready queue. When a rank briefly runs out of local work the
//! original loop busy-spun on `yield_now`, burning a core per idle thread —
//! exactly the oversubscription pathology the paper's hybrid runtime is
//! meant to avoid. [`WorkSignal`] lets a worker block until *something*
//! changed (a message arrived for this rank, or a peer thread pushed ready
//! work) instead of spinning.
//!
//! The protocol is a generation counter plus a condvar:
//!
//! * [`WorkSignal::notify`] bumps the generation (always), and only takes
//!   the mutex + broadcasts when at least one waiter is registered — the
//!   common no-waiter case is a single atomic RMW.
//! * A waiter snapshots the generation *before* re-checking its work
//!   sources, then calls [`WorkSignal::wait_until_changed`] with that
//!   snapshot. Inside the lock it registers itself as a waiter and
//!   re-checks the generation, so a notify that raced between the snapshot
//!   and the wait returns immediately rather than being lost.
//!
//! Missed-wakeup argument: the waiter increments `waiters` and then reads
//! `gen` while holding the mutex; the notifier bumps `gen` and then reads
//! `waiters`. Both operations are `SeqCst`, so in any interleaving either
//! the waiter observes the new generation (returns without sleeping) or the
//! notifier observes `waiters > 0` (acquires the mutex and broadcasts).
//! Waits are additionally bounded by a caller-supplied timeout, so even a
//! logic bug upstream degrades to a slow poll, never a hang.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Generation-counting wakeup channel (see module docs for the protocol).
#[derive(Default)]
pub struct WorkSignal {
    generation: AtomicU64,
    waiters: AtomicUsize,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl WorkSignal {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current generation; snapshot this *before* checking work sources.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Record that new work may exist and wake any parked waiters.
    ///
    /// Cheap when nobody is parked: one atomic increment and one load.
    #[inline]
    pub fn notify(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.lock.lock();
            self.cvar.notify_all();
        }
    }

    /// Park until the generation differs from `seen` or `timeout` elapses.
    /// Returns `true` if the generation changed (work may exist).
    pub fn wait_until_changed(&self, seen: u64, timeout: Duration) -> bool {
        let mut guard = self.lock.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.generation.load(Ordering::SeqCst) != seen {
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            return true;
        }
        self.cvar.wait_for(&mut guard, timeout);
        self.waiters.fetch_sub(1, Ordering::SeqCst);
        self.generation.load(Ordering::SeqCst) != seen
    }
}

impl std::fmt::Debug for WorkSignal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkSignal")
            .field("generation", &self.generation())
            .field("waiters", &self.waiters.load(Ordering::SeqCst))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn notify_before_wait_returns_immediately() {
        let s = WorkSignal::new();
        let seen = s.generation();
        s.notify();
        let t0 = Instant::now();
        assert!(s.wait_until_changed(seen, Duration::from_secs(5)));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn wait_times_out_without_notify() {
        let s = WorkSignal::new();
        let seen = s.generation();
        assert!(!s.wait_until_changed(seen, Duration::from_millis(10)));
    }

    #[test]
    fn concurrent_notify_wakes_parked_waiter() {
        let s = Arc::new(WorkSignal::new());
        let s2 = Arc::clone(&s);
        let seen = s.generation();
        let t = std::thread::spawn(move || s2.wait_until_changed(seen, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        s.notify();
        assert!(t.join().unwrap());
    }

    #[test]
    fn stale_snapshot_never_blocks() {
        // A notify racing between the snapshot and the wait must not be
        // lost: hammer the pair from two threads.
        let s = Arc::new(WorkSignal::new());
        let s2 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            for _ in 0..1000 {
                s2.notify();
            }
        });
        for _ in 0..1000 {
            let seen = s.generation();
            // Bounded wait: either we see the change or time out quickly.
            s.wait_until_changed(seen, Duration::from_micros(50));
        }
        t.join().unwrap();
    }
}
