//! In-process message-passing substrate (the MPI substitution) and the
//! paper's §IV-A communication-infrastructure contribution.
//!
//! Uintah runs `MPI_THREAD_MULTIPLE`: every worker thread posts and tests
//! its own sends and receives. The original implementation tracked
//! outstanding `MPI_Request`s in a Pthread-lock-protected vector processed
//! with `MPI_Testsome()`; a race let several threads process the same
//! received message, each allocating a buffer only one of which was freed —
//! an at-scale memory leak. The fix (this crate's [`WaitFreePool`], the
//! paper's Algorithm 1) is a contention-free pool of requests with move-only,
//! atomically-claimed iterators and per-request `MPI_Test`.
//!
//! Module map:
//!
//! * [`message`] — tags, envelopes and request completion state,
//! * [`world`] — the in-process fabric: [`CommWorld`] and per-rank
//!   [`Communicator`]s with non-blocking send/recv (eager delivery,
//!   MPI-style (source, tag) matching with an unexpected-message queue),
//! * [`pool`] — the wait-free request pool (Algorithm 1),
//! * [`signal`] — per-rank work-arrival signal: lets idle scheduler workers
//!   park instead of busy-spinning, woken by inbound sends,
//! * [`store`] — the [`RequestStore`] abstraction over the pool, the
//!   mutex-vector baseline ("before"), and a deliberately racy variant that
//!   reproduces the paper's leak for demonstration,
//! * [`collective`] — barrier / all-reduce used by the scheduler.

pub mod collective;
pub mod message;
pub mod pool;
pub mod signal;
pub mod store;
pub mod world;

pub use collective::{AllReduce, AllReduceVec, WorldBarrier};
pub use message::{Message, RecvRequest, SendRequest, Tag};
pub use pool::{PoolIterator, WaitFreePool};
pub use signal::WorkSignal;
pub use store::{MutexRequestVec, RacyRequestVec, RequestStore, WaitFreeRequestStore};
pub use world::{CommStats, CommWorld, Communicator, Rank};
