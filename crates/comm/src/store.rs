//! Request stores: the "after" (wait-free pool), the "before"
//! (mutex-protected vector + Testsome) and a deliberately racy variant that
//! reproduces the paper's memory-leak bug for demonstration and testing.

use crate::message::{Message, RecvRequest};
use crate::pool::WaitFreePool;
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};

/// Storage for outstanding receive requests shared by all worker threads of
/// a rank. `process_completed` is called concurrently from many threads
/// (Uintah's `MPI_THREAD_MULTIPLE` pattern: every thread does its own MPI).
pub trait RequestStore: Send + Sync {
    /// Add an outstanding receive.
    fn add(&self, req: RecvRequest);

    /// Test stored requests; invoke `handler` once per completed message and
    /// remove the request. Returns how many were processed by *this* call.
    fn process_completed(&self, handler: &mut dyn FnMut(Message)) -> usize;

    /// Outstanding (not yet processed) requests.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's Algorithm 1: requests live in a [`WaitFreePool`]; each thread
/// claims any completed request with a single CAS and `MPI_Test`s it
/// individually. No locks, no critical sections.
#[derive(Default)]
pub struct WaitFreeRequestStore {
    pool: WaitFreePool<RecvRequest>,
}

impl WaitFreeRequestStore {
    pub fn new() -> Self {
        Self::default()
    }
}

impl RequestStore for WaitFreeRequestStore {
    fn add(&self, req: RecvRequest) {
        self.pool.insert(req);
    }

    fn process_completed(&self, handler: &mut dyn FnMut(Message)) -> usize {
        // Algorithm 1: find_any(ready_request) -> finishCommunication -> erase.
        self.pool.drain_matching(
            |r| r.test(),
            |r| {
                let msg = r
                    .take()
                    .expect("claimed completed request had no payload: double-processing?");
                handler(msg);
            },
        )
    }

    fn len(&self) -> usize {
        self.pool.len()
    }
}

/// The "before": a lock around a vector of requests, processed in batches
/// (`MPI_Testsome` style). Correct, but every thread serializes on the lock
/// for the whole test-and-process sweep.
#[derive(Default)]
pub struct MutexRequestVec {
    requests: Mutex<Vec<RecvRequest>>,
}

impl MutexRequestVec {
    pub fn new() -> Self {
        Self::default()
    }
}

impl RequestStore for MutexRequestVec {
    fn add(&self, req: RecvRequest) {
        self.requests.lock().push(req);
    }

    fn process_completed(&self, handler: &mut dyn FnMut(Message)) -> usize {
        // Hold the lock across the whole Testsome sweep — the critical
        // section the paper describes as serializing the algorithm.
        let mut guard = self.requests.lock();
        let mut processed = 0;
        let mut i = 0;
        while i < guard.len() {
            if guard[i].test() {
                let req = guard.swap_remove(i);
                let msg = req.take().expect("completed request had no payload");
                handler(msg);
                processed += 1;
            } else {
                i += 1;
            }
        }
        processed
    }

    fn len(&self) -> usize {
        self.requests.lock().len()
    }
}

/// A faithful reproduction of the paper's *bug*: the vector is protected by
/// a read-write lock, and the Testsome sweep runs under the **read** lock so
/// multiple threads can observe the same completed request simultaneously.
/// Each observer "allocates a buffer" for the message; only the thread that
/// wins the `take()` actually processes and releases it — the others leak.
///
/// The leak is simulated (counted, not actually leaked) so tests can assert
/// the failure mode deterministically instead of exhausting memory.
#[derive(Default)]
pub struct RacyRequestVec {
    requests: RwLock<Vec<RecvRequest>>,
    buffers_allocated: AtomicU64,
    buffers_released: AtomicU64,
}

impl RacyRequestVec {
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffers allocated for received messages.
    pub fn buffers_allocated(&self) -> u64 {
        self.buffers_allocated.load(Ordering::Relaxed)
    }

    /// Buffers actually released (one per processed message).
    pub fn buffers_released(&self) -> u64 {
        self.buffers_released.load(Ordering::Relaxed)
    }

    /// Buffers leaked so far — the paper's "severe memory leak in the Uintah
    /// infrastructure".
    pub fn leaked(&self) -> u64 {
        self.buffers_allocated() - self.buffers_released()
    }

    /// Remove already-consumed requests. The original code did this under
    /// the write lock after processing; the leak happens before removal.
    pub fn compact(&self) {
        self.requests.write().retain(|r| {
            // Consumed requests have no payload left.
            !(r.test() && r.state_consumed())
        });
    }
}

impl RecvRequest {
    /// True if the payload was already taken (internal helper for the racy
    /// baseline's compaction).
    pub(crate) fn state_consumed(&self) -> bool {
        self.state.payload.lock().is_none()
    }
}

impl RequestStore for RacyRequestVec {
    fn add(&self, req: RecvRequest) {
        self.requests.write().push(req);
    }

    fn process_completed(&self, handler: &mut dyn FnMut(Message)) -> usize {
        let mut processed = 0;
        {
            let guard = self.requests.read();
            for req in guard.iter() {
                if req.test() && !req.state_consumed() {
                    // BUG (reproduced deliberately): every thread that sees
                    // the completed request allocates a buffer for it...
                    self.buffers_allocated.fetch_add(1, Ordering::Relaxed);
                    // ...and spends time preparing it (the window in which
                    // the original code let other threads observe the same
                    // message)...
                    for _ in 0..200 {
                        std::hint::spin_loop();
                    }
                    // ...but only the take() winner processes and releases.
                    if let Some(msg) = req.take() {
                        handler(msg);
                        self.buffers_released.fetch_add(1, Ordering::Relaxed);
                        processed += 1;
                    }
                    // Losers fall through, leaking their buffer.
                }
            }
        }
        self.compact();
        processed
    }

    fn len(&self) -> usize {
        self.requests.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;
    use crate::Tag;
    use bytes::Bytes;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn run_store<S: RequestStore + 'static>(store: Arc<S>, nthreads: usize, nmsgs: usize) -> usize {
        // One world: rank 0 sends nmsgs to rank 1; nthreads workers on rank 1
        // post receives and process completions concurrently.
        let world = CommWorld::new(2);
        let sender = world.communicator(0);
        let receiver = world.communicator(1);
        for i in 0..nmsgs {
            store.add(receiver.irecv(0, Tag(i as u64)));
        }
        let processed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..nthreads {
                let store = store.clone();
                let processed = processed.clone();
                s.spawn(move || {
                    while processed.load(Ordering::Relaxed) < nmsgs {
                        let n = store.process_completed(&mut |_msg| {});
                        processed.fetch_add(n, Ordering::Relaxed);
                        if n == 0 {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            s.spawn(move || {
                for i in 0..nmsgs {
                    sender.isend(1, Tag(i as u64), Bytes::from_static(&[0u8; 128]));
                }
            });
        });
        processed.load(Ordering::Relaxed)
    }

    #[test]
    fn waitfree_store_processes_each_message_once() {
        let store = Arc::new(WaitFreeRequestStore::new());
        let n = run_store(store.clone(), 8, 500);
        assert_eq!(n, 500);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn mutex_store_processes_each_message_once() {
        let store = Arc::new(MutexRequestVec::new());
        let n = run_store(store.clone(), 8, 500);
        assert_eq!(n, 500);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn racy_store_leaks_under_contention() {
        // With many threads sweeping under the read lock, several threads
        // should observe the same completed request and over-allocate —
        // the leak the paper debugged at scale. (The *processing* is still
        // exactly-once thanks to the atomic take; the leak is in buffers.)
        // The race is probabilistic: with 8 threads and 2000 messages a
        // duplicate observation is overwhelmingly likely per round on a
        // multi-core host, but a quiet scheduler (e.g. a single-core CI
        // container) can serialize an entire round. Retry a few rounds so
        // scheduler luck cannot flake the test.
        let mut last = (0, 0);
        for _ in 0..10 {
            let store = Arc::new(RacyRequestVec::new());
            let n = run_store(store.clone(), 8, 2000);
            assert_eq!(n, 2000, "every message still processed exactly once");
            assert_eq!(store.buffers_released(), 2000);
            assert!(
                store.buffers_allocated() >= store.buffers_released(),
                "allocations can never trail releases"
            );
            if store.leaked() > 0 {
                return;
            }
            last = (store.buffers_allocated(), store.buffers_released());
        }
        panic!(
            "expected the racy baseline to leak buffers in at least one of 10 \
             rounds (last round: allocated {}, released {})",
            last.0, last.1
        );
    }

    #[test]
    fn waitfree_store_never_overallocates() {
        // The pool claims before testing, so exactly one buffer per message.
        let store = Arc::new(WaitFreeRequestStore::new());
        let world = CommWorld::new(2);
        let tx = world.communicator(0);
        let rx = world.communicator(1);
        let allocations = AtomicUsize::new(0);
        for i in 0..100 {
            store.add(rx.irecv(0, Tag(i)));
            tx.isend(1, Tag(i), Bytes::from_static(b"m"));
        }
        let mut handler = |_msg: Message| {
            allocations.fetch_add(1, Ordering::Relaxed);
        };
        let n = store.process_completed(&mut handler);
        assert_eq!(n, 100);
        assert_eq!(allocations.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn incomplete_requests_stay_stored() {
        let store = WaitFreeRequestStore::new();
        let world = CommWorld::new(2);
        let rx = world.communicator(1);
        store.add(rx.irecv(0, Tag(1)));
        store.add(rx.irecv(0, Tag(2)));
        let n = store.process_completed(&mut |_| {});
        assert_eq!(n, 0);
        assert_eq!(store.len(), 2);
    }
}
