//! The in-process communication fabric.
//!
//! A [`CommWorld`] holds one mailbox per rank. [`Communicator`] is a rank's
//! endpoint: `isend` delivers eagerly into the destination mailbox (matching
//! a posted receive if one exists, else queueing as an *unexpected message*,
//! exactly MPI's envelope-matching model); `irecv` matches an unexpected
//! message or registers a pending receive. All operations are callable from
//! any number of threads concurrently (`MPI_THREAD_MULTIPLE`).

use crate::message::{Message, RecvRequest, RecvState, SendRequest, Tag};
use crate::signal::WorkSignal;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use uintah_mem::{AllocCategory, AllocTracker};

/// A rank id within a [`CommWorld`].
pub type Rank = usize;

#[derive(Default)]
struct Mailbox {
    /// Messages that arrived before a matching receive was posted.
    unexpected: HashMap<(Rank, Tag), VecDeque<Message>>,
    /// Receives posted before the matching message arrived.
    pending: HashMap<(Rank, Tag), VecDeque<Arc<RecvState>>>,
}

/// Per-world communication statistics (the "local communication" the paper's
/// Figure 1 measures is the time spent posting/processing these).
#[derive(Debug, Default)]
pub struct CommStats {
    pub sends: AtomicU64,
    pub recvs_posted: AtomicU64,
    pub bytes_sent: AtomicU64,
    pub unexpected_hits: AtomicU64,
}

struct WorldInner {
    mailboxes: Vec<Mutex<Mailbox>>,
    /// One work-arrival signal per rank; `isend` notifies the destination's
    /// signal so parked scheduler workers wake when a message lands.
    signals: Vec<Arc<WorkSignal>>,
    stats: CommStats,
    /// Tracks MPI-buffer bytes: allocated when a payload enters the fabric,
    /// freed when the receiver consumes it (the accounting the paper's
    /// trackers provide between scaling runs).
    tracker: AllocTracker,
}

/// A set of communicating ranks sharing one address space.
#[derive(Clone)]
pub struct CommWorld {
    inner: Arc<WorldInner>,
}

impl CommWorld {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0, "world needs at least one rank");
        Self {
            inner: Arc::new(WorldInner {
                mailboxes: (0..nranks).map(|_| Mutex::new(Mailbox::default())).collect(),
                signals: (0..nranks).map(|_| Arc::new(WorkSignal::new())).collect(),
                stats: CommStats::default(),
                tracker: AllocTracker::new(),
            }),
        }
    }

    #[inline]
    pub fn nranks(&self) -> usize {
        self.inner.mailboxes.len()
    }

    /// The endpoint for `rank`.
    pub fn communicator(&self, rank: Rank) -> Communicator {
        assert!(rank < self.nranks(), "rank {rank} out of range");
        Communicator {
            world: self.clone(),
            rank,
        }
    }

    pub fn stats(&self) -> &CommStats {
        &self.inner.stats
    }

    /// Live/peak MPI-buffer accounting (category
    /// [`AllocCategory::MpiBuffer`]): bytes in flight between send and
    /// receive consumption.
    pub fn buffer_tracker(&self) -> &AllocTracker {
        &self.inner.tracker
    }
}

/// A rank's communication endpoint. Cheap to clone; thread-safe.
#[derive(Clone)]
pub struct Communicator {
    world: CommWorld,
    rank: Rank,
}

impl Communicator {
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    #[inline]
    pub fn nranks(&self) -> usize {
        self.world.nranks()
    }

    #[inline]
    pub fn world(&self) -> &CommWorld {
        &self.world
    }

    /// This rank's work-arrival signal (notified on every inbound `isend`).
    /// Schedulers also notify it themselves when pushing ready work, so one
    /// snapshot/wait covers both wakeup sources.
    #[inline]
    pub fn signal(&self) -> &Arc<WorkSignal> {
        &self.world.inner.signals[self.rank]
    }

    /// Non-blocking send. Eager: the payload is captured immediately and the
    /// request completes at post time.
    pub fn isend(&self, dst: Rank, tag: Tag, payload: Bytes) -> SendRequest {
        let stats = &self.world.inner.stats;
        stats.sends.fetch_add(1, Ordering::Relaxed);
        stats.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
        // The fabric now holds a buffer for this message until the
        // receiver consumes it.
        self.world
            .inner
            .tracker
            .on_alloc(AllocCategory::MpiBuffer, payload.len() as u64);
        let msg = Message {
            src: self.rank,
            tag,
            payload,
        };
        let mut mbox = self.world.inner.mailboxes[dst].lock();
        // Match a pending receive if one exists, else queue as unexpected.
        let key = (self.rank, tag);
        let mut delivered = false;
        if let Some(q) = mbox.pending.get_mut(&key) {
            if let Some(state) = q.pop_front() {
                if q.is_empty() {
                    mbox.pending.remove(&key);
                }
                *state.payload.lock() = Some(msg.clone());
                *state.tracker.lock() = Some(self.world.inner.tracker.clone());
                state.done.store(true, Ordering::Release);
                delivered = true;
            }
        }
        if !delivered {
            mbox.unexpected.entry(key).or_default().push_back(msg);
        }
        drop(mbox);
        // Wake any worker parked on the destination rank's signal. Done
        // after the mailbox lock is released so waiters never contend on it.
        self.world.inner.signals[dst].notify();
        SendRequest {
            done: Arc::new(AtomicBool::new(true)),
        }
    }

    /// Non-blocking receive matching `(src, tag)`.
    pub fn irecv(&self, src: Rank, tag: Tag) -> RecvRequest {
        self.world
            .inner
            .stats
            .recvs_posted
            .fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(RecvState::default());
        let key = (src, tag);
        let mut mbox = self.world.inner.mailboxes[self.rank].lock();
        let mut matched = false;
        if let Some(q) = mbox.unexpected.get_mut(&key) {
            if let Some(msg) = q.pop_front() {
                if q.is_empty() {
                    mbox.unexpected.remove(&key);
                }
                *state.payload.lock() = Some(msg);
                *state.tracker.lock() = Some(self.world.inner.tracker.clone());
                state.done.store(true, Ordering::Release);
                self.world
                    .inner
                    .stats
                    .unexpected_hits
                    .fetch_add(1, Ordering::Relaxed);
                matched = true;
            }
        }
        if !matched {
            mbox.pending.entry(key).or_default().push_back(Arc::clone(&state));
        }
        drop(mbox);
        RecvRequest { state }
    }

    /// Blocking receive (spin on `test`); convenience for tests/examples.
    pub fn recv_blocking(&self, src: Rank, tag: Tag) -> Message {
        let req = self.irecv(src, tag);
        let mut spins = 0u64;
        while !req.test() {
            spins += 1;
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            }
            std::hint::spin_loop();
        }
        req.take().expect("completed recv had no payload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_then_recv_unexpected_path() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        c0.isend(1, Tag(7), Bytes::from_static(b"hello"));
        let r = c1.irecv(0, Tag(7));
        assert!(r.test());
        let m = r.take().unwrap();
        assert_eq!(&m.payload[..], b"hello");
        assert_eq!(m.src, 0);
        assert_eq!(w.stats().unexpected_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn recv_then_send_pending_path() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        let r = c1.irecv(0, Tag(9));
        assert!(!r.test());
        c0.isend(1, Tag(9), Bytes::from_static(b"late"));
        assert!(r.test());
        assert_eq!(&r.take().unwrap().payload[..], b"late");
        assert_eq!(w.stats().unexpected_hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn matching_is_by_source_and_tag() {
        let w = CommWorld::new(3);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        let c2 = w.communicator(2);
        let from0 = c2.irecv(0, Tag(1));
        let from1 = c2.irecv(1, Tag(1));
        c1.isend(2, Tag(1), Bytes::from_static(b"one"));
        assert!(!from0.test(), "message from rank 1 must not match src-0 recv");
        assert!(from1.test());
        c0.isend(2, Tag(1), Bytes::from_static(b"zero"));
        assert!(from0.test());
        assert_eq!(&from0.take().unwrap().payload[..], b"zero");
        assert_eq!(&from1.take().unwrap().payload[..], b"one");
    }

    #[test]
    fn same_tag_messages_preserve_fifo_order() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        for i in 0..4u8 {
            c0.isend(1, Tag(5), Bytes::copy_from_slice(&[i]));
        }
        for i in 0..4u8 {
            let m = c1.recv_blocking(0, Tag(5));
            assert_eq!(m.payload[0], i, "MPI non-overtaking order violated");
        }
    }

    #[test]
    fn self_send() {
        let w = CommWorld::new(1);
        let c = w.communicator(0);
        c.isend(0, Tag(3), Bytes::from_static(b"me"));
        assert_eq!(&c.recv_blocking(0, Tag(3)).payload[..], b"me");
    }

    #[test]
    fn cross_thread_delivery() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        let t = std::thread::spawn(move || {
            let mut sum = 0u64;
            for i in 0..100 {
                let m = c1.recv_blocking(0, Tag(i));
                sum += m.payload[0] as u64;
            }
            sum
        });
        for i in 0..100 {
            c0.isend(1, Tag(i), Bytes::copy_from_slice(&[i as u8]));
        }
        assert_eq!(t.join().unwrap(), (0..100u64).map(|i| i & 0xff).sum());
    }

    #[test]
    fn stats_accumulate() {
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        c0.isend(1, Tag(0), Bytes::from_static(&[0; 64]));
        c0.isend(1, Tag(1), Bytes::from_static(&[0; 36]));
        assert_eq!(w.stats().sends.load(Ordering::Relaxed), 2);
        assert_eq!(w.stats().bytes_sent.load(Ordering::Relaxed), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_rejected() {
        CommWorld::new(2).communicator(2);
    }

    #[test]
    fn buffer_tracker_balances_send_and_consume() {
        use uintah_mem::AllocCategory;
        let w = CommWorld::new(2);
        let c0 = w.communicator(0);
        let c1 = w.communicator(1);
        c0.isend(1, Tag(1), Bytes::from_static(&[0u8; 100]));
        c0.isend(1, Tag(2), Bytes::from_static(&[0u8; 50]));
        let snap = w.buffer_tracker().snapshot(AllocCategory::MpiBuffer);
        assert_eq!(snap.live_bytes, 150, "in-flight buffers are live");
        let _ = c1.recv_blocking(0, Tag(1));
        assert_eq!(
            w.buffer_tracker().snapshot(AllocCategory::MpiBuffer).live_bytes,
            50
        );
        let _ = c1.recv_blocking(0, Tag(2));
        let snap = w.buffer_tracker().snapshot(AllocCategory::MpiBuffer);
        assert_eq!(snap.live_bytes, 0);
        assert_eq!(snap.peak_bytes, 150);
        assert_eq!(snap.total_count, 2);
    }
}
