//! Collective operations for in-process ranks: a reusable sense-reversing
//! barrier and an all-reduce, used by the scheduler between task-graph
//! phases (e.g. agreeing that all ranks finished a radiation timestep).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct BarrierInner {
    lock: Mutex<BarrierState>,
    cvar: Condvar,
    nranks: usize,
}

struct BarrierState {
    waiting: usize,
    generation: u64,
}

/// A reusable barrier over the ranks of a world.
#[derive(Clone)]
pub struct WorldBarrier {
    inner: Arc<BarrierInner>,
}

impl WorldBarrier {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0);
        Self {
            inner: Arc::new(BarrierInner {
                lock: Mutex::new(BarrierState {
                    waiting: 0,
                    generation: 0,
                }),
                cvar: Condvar::new(),
                nranks,
            }),
        }
    }

    /// Block until all `nranks` participants arrive. Returns `true` for
    /// exactly one caller per generation (the "leader").
    pub fn wait(&self) -> bool {
        let mut state = self.inner.lock.lock();
        let gen = state.generation;
        state.waiting += 1;
        if state.waiting == self.inner.nranks {
            state.waiting = 0;
            state.generation += 1;
            self.inner.cvar.notify_all();
            true
        } else {
            while state.generation == gen {
                self.inner.cvar.wait(&mut state);
            }
            false
        }
    }
}

struct ReduceInner {
    lock: Mutex<ReduceState>,
    cvar: Condvar,
    nranks: usize,
}

struct ReduceState {
    acc: f64,
    count: usize,
    result: f64,
    generation: u64,
}

/// All-reduce (sum) of one `f64` per rank; every caller gets the total.
#[derive(Clone)]
pub struct AllReduce {
    inner: Arc<ReduceInner>,
}

impl AllReduce {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0);
        Self {
            inner: Arc::new(ReduceInner {
                lock: Mutex::new(ReduceState {
                    acc: 0.0,
                    count: 0,
                    result: 0.0,
                    generation: 0,
                }),
                cvar: Condvar::new(),
                nranks,
            }),
        }
    }

    /// Contribute `value`; blocks until all ranks contribute; returns the sum.
    pub fn sum(&self, value: f64) -> f64 {
        let mut state = self.inner.lock.lock();
        let gen = state.generation;
        state.acc += value;
        state.count += 1;
        if state.count == self.inner.nranks {
            state.result = state.acc;
            state.acc = 0.0;
            state.count = 0;
            state.generation += 1;
            self.inner.cvar.notify_all();
            state.result
        } else {
            while state.generation == gen {
                self.inner.cvar.wait(&mut state);
            }
            state.result
        }
    }
}

struct VecReduceInner {
    lock: Mutex<VecReduceState>,
    cvar: Condvar,
    nranks: usize,
}

struct VecReduceState {
    acc: Vec<f64>,
    count: usize,
    result: Arc<Vec<f64>>,
    generation: u64,
}

/// Element-wise all-reduce (sum) of one `Vec<f64>` per rank; every caller
/// gets a shared handle to the same summed vector.
///
/// This is the cost exchange before a rebalance: each rank contributes its
/// measured per-patch costs (zeros for patches it does not own) and reads
/// back the global dense cost vector — identical on every rank, so each can
/// run the regridder independently and all agree on the new distribution.
#[derive(Clone)]
pub struct AllReduceVec {
    inner: Arc<VecReduceInner>,
}

impl AllReduceVec {
    pub fn new(nranks: usize) -> Self {
        assert!(nranks > 0);
        Self {
            inner: Arc::new(VecReduceInner {
                lock: Mutex::new(VecReduceState {
                    acc: Vec::new(),
                    count: 0,
                    result: Arc::new(Vec::new()),
                    generation: 0,
                }),
                cvar: Condvar::new(),
                nranks,
            }),
        }
    }

    /// Contribute `values`; blocks until all ranks contribute; returns the
    /// element-wise sum. All ranks must pass equal-length vectors.
    pub fn sum(&self, values: &[f64]) -> Arc<Vec<f64>> {
        let mut state = self.inner.lock.lock();
        let gen = state.generation;
        if state.count == 0 {
            state.acc = vec![0.0; values.len()];
        }
        assert_eq!(
            state.acc.len(),
            values.len(),
            "ranks disagree on reduce vector length"
        );
        for (a, &x) in state.acc.iter_mut().zip(values) {
            *a += x;
        }
        state.count += 1;
        if state.count == self.inner.nranks {
            state.result = Arc::new(std::mem::take(&mut state.acc));
            state.count = 0;
            state.generation += 1;
            self.inner.cvar.notify_all();
            Arc::clone(&state.result)
        } else {
            while state.generation == gen {
                self.inner.cvar.wait(&mut state);
            }
            Arc::clone(&state.result)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn barrier_synchronizes_and_reuses() {
        let b = WorldBarrier::new(4);
        let phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = b.clone();
                let phase = phase.clone();
                s.spawn(move || {
                    for p in 0..10 {
                        // Everyone must observe the same phase at the barrier.
                        assert!(phase.load(Ordering::SeqCst) >= p);
                        if b.wait() {
                            phase.fetch_add(1, Ordering::SeqCst);
                        }
                        b.wait();
                        assert!(phase.load(Ordering::SeqCst) > p);
                    }
                });
            }
        });
        assert_eq!(phase.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn barrier_elects_one_leader_per_generation() {
        let b = WorldBarrier::new(3);
        let leaders = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let b = b.clone();
                let leaders = leaders.clone();
                s.spawn(move || {
                    for _ in 0..20 {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let r = AllReduce::new(5);
        let mut handles = Vec::new();
        for rank in 0..5 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut totals = Vec::new();
                for round in 0..8 {
                    totals.push(r.sum((rank * 10 + round) as f64));
                }
                totals
            }));
        }
        let all: Vec<Vec<f64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for round in 0..8 {
            let expect: f64 = (0..5).map(|rank| (rank * 10 + round) as f64).sum();
            for ranks in &all {
                assert_eq!(ranks[round], expect);
            }
        }
    }

    #[test]
    fn single_rank_collectives_trivial() {
        let b = WorldBarrier::new(1);
        assert!(b.wait());
        let r = AllReduce::new(1);
        assert_eq!(r.sum(3.5), 3.5);
        let rv = AllReduceVec::new(1);
        assert_eq!(*rv.sum(&[1.0, 2.0]), vec![1.0, 2.0]);
    }

    #[test]
    fn allreduce_vec_sums_elementwise_and_reuses() {
        let r = AllReduceVec::new(3);
        let mut handles = Vec::new();
        for rank in 0..3usize {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                let mut rounds = Vec::new();
                for round in 0..5 {
                    // Rank owns slot `rank`: contributes only there (the
                    // per-patch cost exchange pattern).
                    let mut v = vec![0.0; 3];
                    v[rank] = (rank * 100 + round) as f64;
                    rounds.push(r.sum(&v));
                }
                rounds
            }));
        }
        let all: Vec<Vec<Arc<Vec<f64>>>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for round in 0..5 {
            let expect: Vec<f64> = (0..3).map(|rank| (rank * 100 + round) as f64).collect();
            for per_rank in &all {
                assert_eq!(*per_rank[round], expect);
            }
        }
    }
}
