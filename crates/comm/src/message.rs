//! Message envelopes, tags and request completion state.

use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A message tag, matched together with the source rank (MPI semantics).
///
/// The runtime composes tags from `(variable, source patch, dest patch,
/// phase)` via [`Tag::compose`]; any scheme that keeps concurrent transfers
/// distinct works.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Tag(pub u64);

impl Tag {
    /// Compose a tag from a variable id, source/destination patch ids and a
    /// phase (e.g. coarse/fine exchange round).
    #[inline]
    pub fn compose(var: u8, src_patch: u32, dst_patch: u32, phase: u8) -> Tag {
        // 8 var | 24 src | 24 dst | 8 phase
        Tag(((var as u64) << 56)
            | (((src_patch as u64) & 0xff_ffff) << 32)
            | (((dst_patch as u64) & 0xff_ffff) << 8)
            | phase as u64)
    }

    /// The phase byte (low 8 bits) of this tag.
    #[inline]
    pub fn phase(self) -> u8 {
        (self.0 & 0xff) as u8
    }

    /// The same tag re-stamped with a different phase byte.
    ///
    /// The phase is the only component of a tag that changes between
    /// timesteps, so a compiled graph's tags can be reused across steps by
    /// re-stamping at post time instead of recompiling the whole graph.
    #[inline]
    #[must_use]
    pub fn with_phase(self, phase: u8) -> Tag {
        Tag((self.0 & !0xff) | phase as u64)
    }
}

/// A delivered message: source rank, tag, payload.
#[derive(Clone, Debug)]
pub struct Message {
    pub src: usize,
    pub tag: Tag,
    pub payload: Bytes,
}

#[derive(Debug, Default)]
pub(crate) struct RecvState {
    pub(crate) done: AtomicBool,
    pub(crate) payload: Mutex<Option<Message>>,
    /// Buffer tracker to credit when the payload is consumed (set at
    /// delivery time by the fabric).
    pub(crate) tracker: Mutex<Option<uintah_mem::AllocTracker>>,
}

/// A non-blocking receive handle.
///
/// `test()` mirrors `MPI_Test`: cheap, callable from any thread, and the
/// request-store benchmark hammers it concurrently. The payload is taken
/// exactly once via [`RecvRequest::take`].
#[derive(Clone, Debug)]
pub struct RecvRequest {
    pub(crate) state: Arc<RecvState>,
}

impl RecvRequest {
    /// Has a matching message arrived?
    #[inline]
    pub fn test(&self) -> bool {
        self.state.done.load(Ordering::Acquire)
    }

    /// Take the delivered message. Returns `None` if not yet complete or if
    /// another holder already took it (at-most-once completion — the
    /// property the paper's racy baseline violated).
    pub fn take(&self) -> Option<Message> {
        if !self.test() {
            return None;
        }
        let msg = self.state.payload.lock().take();
        if let Some(m) = &msg {
            // Credit the fabric's buffer accounting: the receive buffer is
            // released exactly once, by the consuming thread.
            if let Some(tracker) = self.state.tracker.lock().take() {
                tracker.on_free(uintah_mem::AllocCategory::MpiBuffer, m.payload.len() as u64);
            }
        }
        msg
    }
}

/// A non-blocking send handle. Sends are eager (buffered): they complete at
/// post time once the payload is captured by the fabric.
#[derive(Clone, Debug)]
pub struct SendRequest {
    pub(crate) done: Arc<AtomicBool>,
}

impl SendRequest {
    #[inline]
    pub fn test(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_compose_distinct_fields() {
        let a = Tag::compose(1, 2, 3, 4);
        assert_ne!(a, Tag::compose(2, 2, 3, 4));
        assert_ne!(a, Tag::compose(1, 3, 3, 4));
        assert_ne!(a, Tag::compose(1, 2, 4, 4));
        assert_ne!(a, Tag::compose(1, 2, 3, 5));
        assert_eq!(a, Tag::compose(1, 2, 3, 4));
    }

    #[test]
    fn tag_patch_ids_do_not_collide_within_24_bits() {
        // 262k patches (the paper's largest census) fits in 24 bits.
        let t1 = Tag::compose(0, 262_143, 0, 0);
        let t2 = Tag::compose(0, 262_142, 0, 0);
        assert_ne!(t1, t2);
    }

    #[test]
    fn recv_take_is_at_most_once() {
        let state = Arc::new(RecvState::default());
        *state.payload.lock() = Some(Message {
            src: 0,
            tag: Tag(1),
            payload: Bytes::from_static(b"x"),
        });
        state.done.store(true, Ordering::Release);
        let r = RecvRequest { state };
        assert!(r.test());
        assert!(r.take().is_some());
        assert!(r.take().is_none(), "second take must see nothing");
    }
}
