//! Scattering study: the σ_s / phase-function physics of RTE Eq. 2, solved
//! by both RMCRT (per-ray direction changes) and DOM (source iteration),
//! showing why the paper calls Monte Carlo's scattering support "natural".
//!
//! Run with:
//! ```text
//! cargo run --release --example scattering
//! ```

use uintah::prelude::*;
use uintah::rmcrt::dom::{solve_with_scattering, SnOrder};
use uintah::rmcrt::scatter::{div_q_with_scattering, PhaseFunction, ScatteringMedium};

fn main() {
    let n = 12;
    let props = LevelProps::uniform(
        Region::cube(n),
        Vector::splat(1.0 / n as f64),
        1.0, // κ
        1.0, // σT⁴/π
    );
    let c = IntVector::splat(n / 2);

    println!("Hot medium (κ=1, σT⁴/π=1) in a cold black enclosure, {n}³ cells");
    println!("∇·q at the centre vs scattering coefficient σ_s:\n");
    println!(
        "{:>6} | {:>12} {:>12} | {:>10} {:>14}",
        "σ_s", "RMCRT ∇·q", "DOM S8 ∇·q", "DOM iters", "rel. diff"
    );
    for sigma_s in [0.0, 0.5, 2.0, 8.0] {
        let mc = div_q_with_scattering(
            &props,
            &ScatteringMedium {
                sigma_s,
                phase: PhaseFunction::Isotropic,
            },
            c,
            8000,
            1e-4,
            42,
        );
        let (dom, iters) = solve_with_scattering(&props, SnOrder::S8, sigma_s, 1e-8, 300);
        let d = dom.div_q[c];
        println!(
            "{:>6.1} | {:>12.4} {:>12.4} | {:>10} {:>13.1}%",
            sigma_s,
            mc,
            d,
            iters,
            (mc - d).abs() / d.abs() * 100.0
        );
    }
    println!("\nTwo things to see:");
    println!(" 1. scattering traps radiation: ∇·q falls as σ_s grows (both methods agree);");
    println!(" 2. DOM pays for scattering with source iterations (count grows with albedo),");
    println!("    while RMCRT's cost per ray barely changes — the paper's §I argument.");

    println!("\nHenyey–Greenstein anisotropy (σ_s = 2, forward-peaked vs isotropic):");
    for (label, phase) in [
        ("isotropic", PhaseFunction::Isotropic),
        ("g = +0.8 ", PhaseFunction::HenyeyGreenstein(0.8)),
        ("g = -0.5 ", PhaseFunction::HenyeyGreenstein(-0.5)),
    ] {
        let mc = div_q_with_scattering(
            &props,
            &ScatteringMedium {
                sigma_s: 2.0,
                phase,
            },
            c,
            8000,
            1e-4,
            42,
        );
        println!("  {label}: ∇·q = {mc:.4}");
    }
    println!("\n(forward-peaked scattering barely impedes escape — divQ stays near the");
    println!(" isotropic-free value — while back-scattering traps radiation hardest.)");
}
