//! Boiler demo: the coupling pattern of the CCMSC target problem.
//!
//! An explicit energy equation (ARCHES-lite) evolves the furnace
//! temperature; every few CFD steps RMCRT recomputes ∇·q_r from the
//! current temperature field (time-scale-separated coupling, paper §III-A);
//! a virtual radiometer watches the flame through a wall port.
//!
//! Run with:
//! ```text
//! cargo run --release --example boiler
//! ```

use uintah::prelude::*;
use uintah::rmcrt::labels::sigma_t4_over_pi;
use uintah::rmcrt::props::FLOW_CELL;
use uintah::rmcrt::radiometer::Radiometer;

fn main() {
    let setup = BoilerSetup {
        n: 16,
        ..Default::default()
    };
    println!(
        "boiler: {n}³ furnace, burner {burner:.1} MW/m³, walls {tw} K",
        n = setup.n,
        burner = setup.burner_power / 1e6,
        tw = setup.wall_temperature
    );

    let (mut solver, mut coupler) = setup.build(
        5,
        RmcrtParams {
            nrays: 32,
            threshold: 1e-3,
            ..Default::default()
        },
    );
    coupler.nthreads = 2;

    let dx = setup.dx();
    let mut t = 0.0;
    println!("\n   time(s)   mean T(K)   flame T(K)   radiometer q(kW/m²)");
    for step in 0..100 {
        t += coupler.step(&mut solver, dx, 0.05);
        if step % 10 == 9 {
            let flame_c = IntVector::new(setup.n / 2, setup.n / 2, setup.n / 3);
            let flame_t = solver.temperature()[flame_c];

            // Radiometer in the -x wall at mid-height, looking at the flame.
            let q = {
                let region = solver.region();
                let mut sig = CcVariable::<f64>::new(region);
                let temp = solver.temperature();
                for c in region.cells() {
                    sig[c] = sigma_t4_over_pi(temp[c]);
                }
                let props = LevelProps {
                    region,
                    anchor: Point::ORIGIN,
                    dx,
                    abskg: setup.abskg(),
                    sigma_t4_over_pi: sig,
                    cell_type: CcVariable::filled(region, FLOW_CELL),
                };
                let stack = [TraceLevel {
                    props: &props,
                    roi: region,
                }];
                Radiometer {
                    position: Point::new(0.03, 0.5, 0.4),
                    normal: Vector::new(1.0, 0.0, 0.0),
                    half_angle: 0.6,
                    nrays: 500,
                    seed: 99,
                }
                .measure(&stack, 1e-4)
            };
            println!(
                "   {:7.3}   {:9.1}   {:10.1}   {:10.2}",
                t,
                solver.mean_temperature(),
                flame_t,
                q / 1e3
            );
        }
    }
    println!(
        "\nradiation solves: {} (one per {} CFD steps)",
        coupler.solves(),
        coupler.interval
    );
}
