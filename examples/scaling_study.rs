//! Strong-scaling study on the modeled Titan (Figures 2/3-style curves) —
//! the interactive version of the `fig2_medium`/`fig3_large` harnesses.
//!
//! Run with:
//! ```text
//! cargo run --release --example scaling_study [medium|large]
//! ```

use uintah::prelude::*;
use uintah::titan::sim::{efficiency, scaling_curve};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "medium".into());
    let (name, fine, counts): (&str, i32, &[usize]) = match which.as_str() {
        "large" => ("LARGE (512³/128³)", 512, &[512, 1024, 2048, 4096, 8192, 16384]),
        _ => ("MEDIUM (256³/64³)", 256, &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096]),
    };
    let params = MachineParams::titan();
    println!("{name} 2-level benchmark, RR 4, 100 rays/cell — modeled Titan XK7");
    println!("(shape reproduction; absolute seconds are model estimates)\n");
    println!("{:>8} | {:>12} {:>12} {:>12}", "GPUs", "16³ patch", "32³ patch", "64³ patch");
    println!("{:->8}-+-{:-<12}-{:-<12}-{:-<12}", "", "", "", "");

    let mut curves = Vec::new();
    for patch in [16, 32, 64] {
        let grid = Grid::builder()
            .fine_cells(IntVector::splat(fine))
            .num_levels(2)
            .refinement_ratio(4)
            .fine_patch_size(IntVector::splat(patch))
            .build();
        curves.push(scaling_curve(&grid, counts, 4, &params, StoreModel::WaitFreePool));
    }
    for (i, &n) in counts.iter().enumerate() {
        println!(
            "{:>8} | {:>11.3}s {:>11.3}s {:>11.3}s",
            n, curves[0][i].time, curves[1][i].time, curves[2][i].time
        );
    }

    // Paper headline: LARGE problem efficiency from 4096 GPUs.
    if let (Some(a), Some(b)) = (
        curves[0].iter().find(|p| p.gpus == 4096),
        curves[0].iter().find(|p| p.gpus == 16384),
    ) {
        println!(
            "\nstrong-scaling efficiency 4096 → 16384 GPUs (16³ patches): {:.0}%  (paper: 89%)",
            efficiency(a, b) * 100.0
        );
    }
}
