//! Quickstart: solve the Burns & Christon benchmark with multi-level RMCRT
//! on a laptop-scale 2-level grid, distributed over 4 simulated ranks with
//! 2 worker threads each, and print a centreline profile of ∇·q.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use uintah::prelude::*;

fn main() {
    // The paper's benchmark, scaled down: 2 levels, refinement ratio 4,
    // fine 32³ / coarse 8³, 8³ patches.
    let grid = Arc::new(BurnsChriston::small_grid(32, 8));
    println!(
        "grid: {} levels, fine {}³, coarse {}³, {} patches",
        grid.num_levels(),
        grid.fine_level().cell_region().extent().x,
        grid.coarsest_level().cell_region().extent().x,
        grid.num_patches()
    );

    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 64,
            threshold: 1e-4,
            ..Default::default()
        },
        halo: 4,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, false));

    let cfg = WorldConfig {
        nranks: 4,
        nthreads: 2,
        store: StoreKind::WaitFree,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let result = run_world(Arc::clone(&grid), decls, cfg);
    println!(
        "solved ∇·q on {} fine cells across 4 ranks in {:.2?} ({} messages, {} bytes)",
        grid.fine_level().num_cells(),
        t0.elapsed(),
        result.total_messages(),
        result.total_bytes()
    );

    // Collect divQ along the x centreline (y = z = mid).
    let fine = grid.fine_level();
    let mid = fine.cell_region().extent().x / 2;
    println!("\n  x      divQ (W/m³)");
    for x in 0..fine.cell_region().extent().x {
        let c = IntVector::new(x, mid, mid);
        let patch = fine.patch_containing(c).expect("cell on fine level");
        let rank = result.dist.rank_of(patch.id());
        let divq = result.ranks[rank]
            .dw
            .get_patch(DIVQ, patch.id())
            .expect("divQ computed");
        if x % 2 == 0 {
            let xc = (x as f64 + 0.5) / fine.cell_region().extent().x as f64;
            println!("  {:5.3}  {:+.4}", xc, divq.as_f64()[c]);
        }
    }
    println!("\n(positive = net emission: the hot medium loses heat to the cold walls,");
    println!(" strongest at the domain centre where κ peaks — Burns & Christon's shape)");

    // Assemble the global divQ field and dump a mid-plane image.
    let mut divq = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() == grid.fine_level_index() {
                divq.copy_window(
                    rr.dw.get_patch(DIVQ, pid).unwrap().as_f64(),
                    &grid.patch(pid).interior(),
                );
            }
        }
    }
    let out = std::env::temp_dir().join("rmcrt_quickstart_divq.ppm");
    let (lo, hi) = uintah::viz::write_slice_ppm(&out, &divq, 2, mid).expect("write slice");
    println!(
        "\nwrote mid-plane ∇·q image to {} (scale {:.3}..{:.3} W/m³)",
        out.display(),
        lo,
        hi
    );
}
