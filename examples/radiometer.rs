//! Virtual radiometer sweep: scan a detector across one wall of the Burns &
//! Christon enclosure and print the incident-flux profile — the "heat flux
//! to the surrounding walls" that is the boiler designers' quantity of
//! interest (paper §III-A).
//!
//! Run with:
//! ```text
//! cargo run --release --example radiometer
//! ```

use uintah::prelude::*;
use uintah::rmcrt::radiometer::Radiometer;

fn main() {
    let n = 32;
    let grid = BurnsChriston::small_grid(n, 8);
    let problem = BurnsChriston::default();
    let props = problem.props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];

    println!("Burns & Christon {n}³ medium, detector scanning the x=0 wall");
    println!("(hemispherical view, 2000 rays per reading)\n");
    println!("   y      q(y) W/m²");
    for iy in 0..8 {
        let y = (iy as f64 + 0.5) / 8.0;
        let r = Radiometer {
            position: Point::new(0.01, y, 0.5),
            normal: Vector::new(1.0, 0.0, 0.0),
            half_angle: std::f64::consts::FRAC_PI_2,
            nrays: 2000,
            seed: 42,
        };
        let q = r.measure(&stack, 1e-5);
        let bar = "█".repeat((q * 60.0) as usize);
        println!("  {y:5.3}  {q:8.4}  {bar}");
    }
    println!("\nflux peaks opposite the domain centre where κ (and emission) peak,");
    println!("and falls toward the wall corners — the Burns & Christon wall-flux shape.");
}
