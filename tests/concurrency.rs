//! Concurrency stress tests across the stack: the wait-free pool, the
//! racy baseline's leak, the lock-free allocator, and schedule fuzzing of
//! the distributed runtime.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use uintah::comm::{MutexRequestVec, RacyRequestVec, RequestStore, WaitFreeRequestStore};
use uintah::mem::{BlockPool, PageArena};
use uintah::prelude::*;

/// Heavier version of the pool's exactly-once test: producers and
/// consumers race on a shared pool; every inserted value must be drained
/// exactly once.
#[test]
fn wait_free_pool_exactly_once_under_stress() {
    let pool = Arc::new(WaitFreePool::<usize>::new());
    const PER: usize = 5000;
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 3;
    let counts: Arc<Vec<AtomicUsize>> =
        Arc::new((0..PER * PRODUCERS).map(|_| AtomicUsize::new(0)).collect());
    let drained = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..PER {
                    pool.insert(p * PER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let pool = pool.clone();
            let counts = counts.clone();
            let drained = drained.clone();
            s.spawn(move || {
                while drained.load(Ordering::Relaxed) < PER * PRODUCERS {
                    let n = pool.drain_matching(
                        |_| true,
                        |v| {
                            counts[v].fetch_add(1, Ordering::Relaxed);
                        },
                    );
                    if n == 0 {
                        std::thread::yield_now();
                    } else {
                        drained.fetch_add(n, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "value {i}");
    }
}

/// The three request stores under identical concurrent load: all process
/// every message exactly once; only the racy baseline over-allocates.
#[test]
fn request_stores_under_concurrent_load() {
    fn drive<S: RequestStore + 'static>(store: Arc<S>, nmsgs: usize) -> usize {
        let world = CommWorld::new(2);
        let tx = world.communicator(0);
        let rx = world.communicator(1);
        for i in 0..nmsgs {
            store.add(rx.irecv(0, Tag(i as u64)));
        }
        let processed = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..6 {
                let store = store.clone();
                let processed = processed.clone();
                s.spawn(move || {
                    while processed.load(Ordering::Relaxed) < nmsgs {
                        let n = store.process_completed(&mut |_m| {});
                        if n == 0 {
                            std::thread::yield_now();
                        } else {
                            processed.fetch_add(n, Ordering::Relaxed);
                        }
                    }
                });
            }
            s.spawn(move || {
                for i in 0..nmsgs {
                    tx.isend(1, Tag(i as u64), bytes::Bytes::from_static(&[1u8; 64]));
                }
            });
        });
        processed.load(Ordering::Relaxed)
    }

    assert_eq!(drive(Arc::new(WaitFreeRequestStore::new()), 1500), 1500);
    assert_eq!(drive(Arc::new(MutexRequestVec::new()), 1500), 1500);
    let racy = Arc::new(RacyRequestVec::new());
    assert_eq!(drive(racy.clone(), 3000), 3000);
    assert_eq!(racy.buffers_released(), 3000);
    assert!(
        racy.leaked() > 0,
        "the racy baseline should leak under 6-thread contention (allocated {})",
        racy.buffers_allocated()
    );
}

/// Lock-free block pool: alternating alloc/free storms from many threads,
/// verifying containment of writes and exact live accounting.
#[test]
fn block_pool_storm() {
    let pool = BlockPool::new(96, PageArena::new());
    std::thread::scope(|s| {
        for t in 0..6u8 {
            let pool = pool.clone();
            s.spawn(move || {
                let mut held = Vec::new();
                for i in 0..3000usize {
                    let mut b = pool.allocate();
                    b.as_mut_slice()[0] = t;
                    b.as_mut_slice()[95] = t;
                    held.push(b);
                    if i % 2 == 1 {
                        let b = held.swap_remove((i * 7) % held.len());
                        assert_eq!(b.as_slice()[0], t);
                        assert_eq!(b.as_slice()[95], t);
                    }
                }
            });
        }
    });
    assert_eq!(pool.live_blocks(), 0);
}

/// Schedule fuzzing: the same world run repeatedly with different
/// rank/thread shapes must always complete (no deadlock) and always give
/// the same divQ.
#[test]
fn runtime_schedule_fuzzing() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let collect = |result: &uintah::runtime::WorldResult| -> Vec<f64> {
        let fine = grid.fine_level();
        let mut out = CcVariable::<f64>::new(fine.cell_region());
        for rr in &result.ranks {
            for &pid in result.dist.owned_by(rr.rank) {
                if grid.patch(pid).level_index() == grid.fine_level_index() {
                    out.copy_window(
                        rr.dw.get_patch(DIVQ, pid).unwrap().as_f64(),
                        &grid.patch(pid).interior(),
                    );
                }
            }
        }
        out.as_slice().to_vec()
    };
    let mut baseline: Option<Vec<f64>> = None;
    for (nranks, nthreads, store) in [
        (1usize, 1usize, StoreKind::WaitFree),
        (2, 3, StoreKind::WaitFree),
        (5, 2, StoreKind::WaitFree),
        (3, 2, StoreKind::Mutex),
        (4, 1, StoreKind::Mutex),
        (2, 4, StoreKind::Racy),
        (7, 2, StoreKind::WaitFree),
    ] {
        let result = run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks,
                nthreads,
                store,
                ..Default::default()
            },
        );
        let got = collect(&result);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "({nranks} ranks, {nthreads} threads, {store:?})"),
        }
    }
}

/// GPU data warehouse hammered by many threads: one upload per level
/// variable no matter the interleaving, and memory returns to zero.
#[test]
fn gpu_level_db_concurrent_hammer() {
    use uintah::gpu::GpuDataWarehouse;
    use uintah::rmcrt::labels::ABSKG;
    let dw = Arc::new(GpuDataWarehouse::new(GpuDevice::k20x()));
    let handles: Arc<parking_lot_handles::Holder> = Arc::new(parking_lot_handles::Holder::default());
    std::thread::scope(|s| {
        for _ in 0..8 {
            let dw = dw.clone();
            let handles = handles.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    let v = dw
                        .ensure_level(ABSKG, 0, || {
                            FieldData::F64(CcVariable::filled(Region::cube(8), 1.0))
                        })
                        .unwrap();
                    handles.push(v);
                }
            });
        }
    });
    assert_eq!(dw.device().counters().h2d_transfers, 1, "exactly one upload");
    handles.clear();
    dw.clear_level_db();
    assert_eq!(dw.device().used(), 0);
}

/// Tiny helper module so the test above can hold Arc handles across
/// threads without fighting the borrow checker.
mod parking_lot_handles {
    use std::sync::Mutex;

    #[derive(Default)]
    pub struct Holder {
        inner: Mutex<Vec<std::sync::Arc<uintah::gpu::DeviceVar>>>,
    }

    impl Holder {
        pub fn push(&self, v: std::sync::Arc<uintah::gpu::DeviceVar>) {
            self.inner.lock().unwrap().push(v);
        }

        pub fn clear(&self) {
            self.inner.lock().unwrap().clear();
        }
    }
}

/// Regrid racing async D2H: PendingD2H handles are parked in the runtime
/// warehouse while reader threads hammer `get_patch` and a regrid thread
/// runs the executor's pre-migration sequence (drain parked slots → device
/// sync → generation bump → GPU eviction). The run must complete without
/// deadlock, readers must only ever observe correct data, and no device
/// bytes may stay resident or in flight afterwards.
#[test]
fn regrid_racing_async_d2h_drains_without_deadlock_or_leaks() {
    use uintah::runtime::DataWarehouse;
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(16))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let patches: Vec<_> = grid.fine_level().patches().iter().map(|p| p.id()).collect();
    for _round in 0..10 {
        let dw = Arc::new(DataWarehouse::new(Arc::clone(&grid)));
        let gpu = Arc::new(GpuDataWarehouse::new(GpuDevice::k20x()));
        for &p in &patches {
            gpu.put_patch(DIVQ, p, FieldData::F64(CcVariable::filled(Region::cube(8), p.0 as f64)))
                .unwrap();
            dw.put_patch_pending(DIVQ, p, gpu.take_patch_to_host_async(DIVQ, p).unwrap());
        }
        std::thread::scope(|s| {
            let patches = &patches;
            for t in 0..3usize {
                let dw = Arc::clone(&dw);
                s.spawn(move || {
                    for i in 0..400usize {
                        let p = patches[(i + t) % patches.len()];
                        // Either this get materializes the drain itself or
                        // it sees the promoted entry; a miss is legal only
                        // once the generation bump has landed.
                        if let Some(v) = dw.get_patch(DIVQ, p) {
                            assert_eq!(v.as_f64().as_slice()[0], p.0 as f64);
                        }
                    }
                });
            }
            let dw = Arc::clone(&dw);
            let gpu = Arc::clone(&gpu);
            s.spawn(move || {
                // The executor's regrid prologue, verbatim order.
                dw.drain_pending_d2h();
                gpu.device().sync_d2h();
                dw.begin_regrid();
                gpu.invalidate_for_regrid();
            });
        });
        // Every parked field was drained before the bump and survives it.
        for &p in &patches {
            let v = dw.get_patch(DIVQ, p).expect("drained before generation bump");
            assert_eq!(v.as_f64().as_slice()[0], p.0 as f64);
        }
        assert_eq!(dw.drain_pending_d2h(), 0, "nothing left parked");
        assert_eq!(gpu.device().counters().d2h_inflight, 0, "copy engine idle");
        assert_eq!(gpu.device().used(), 0, "no leaked device bytes");
    }

    // The missed-drain race: a handle parked and NOT drained before the
    // generation bump must never satisfy a get — and must not leak device
    // memory when the discarded drain completes.
    let dw = DataWarehouse::new(Arc::clone(&grid));
    let gpu = GpuDataWarehouse::new(GpuDevice::k20x());
    let p = patches[0];
    gpu.put_patch(CELLTYPE, p, FieldData::U8(CcVariable::filled(Region::cube(8), 7)))
        .unwrap();
    dw.put_patch_pending(CELLTYPE, p, gpu.take_patch_to_host_async(CELLTYPE, p).unwrap());
    dw.begin_regrid();
    assert!(dw.get_patch(CELLTYPE, p).is_none(), "stale slot must not serve");
    assert!(dw.stale_hits() > 0, "blocked stale slot is counted");
    assert_eq!(dw.drain_pending_d2h(), 0, "stale slot not drained as current");
    gpu.device().sync_d2h();
    assert_eq!(gpu.device().used(), 0, "discarded drain still releases device bytes");
}

/// Fleet vs. regrid: a 4-device warehouse parks async D2H drains on every
/// device's copy engine while reader threads hammer `get_patch` and a
/// regrid thread evicts only the devices whose patches changed owner.
/// The run must complete without deadlock; afterwards the evicted devices
/// hold zero resident bytes, the untouched devices keep their level
/// replicas (revalidated next epoch with no re-upload), and no device's
/// copy engine is left in flight.
#[test]
fn fleet_regrid_race_evicts_only_affected_devices_without_leaks() {
    use uintah::gpu::GpuDataWarehouse;
    use uintah::runtime::DataWarehouse;
    const NDEV: usize = 4;
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(16))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let patches: Vec<_> = grid.fine_level().patches().iter().map(|p| p.id()).collect();
    for _round in 0..10 {
        let dw = Arc::new(DataWarehouse::new(Arc::clone(&grid)));
        let gpu = Arc::new(GpuDataWarehouse::with_fleet(DeviceFleet::k20x(NDEV), true, true));
        // Stage a level replica on every device, then park one async drain
        // per patch on its sticky home device's engine.
        for dev in 0..NDEV {
            gpu.ensure_level_fresh_on(dev, ABSKG, 0, || {
                FieldData::F64(CcVariable::filled(Region::cube(8), 1.0))
            })
            .unwrap();
        }
        for &p in &patches {
            gpu.put_patch(DIVQ, p, FieldData::F64(CcVariable::filled(Region::cube(8), p.0 as f64)))
                .unwrap();
            dw.put_patch_pending(DIVQ, p, gpu.take_patch_to_host_async(DIVQ, p).unwrap());
        }
        // The regrid moves the first half of the patch list to other ranks;
        // only their home devices need eviction.
        let affected: Vec<usize> = {
            let mut s = std::collections::BTreeSet::new();
            for &p in &patches[..patches.len() / 2] {
                s.insert(gpu.device_for_patch(p));
            }
            s.into_iter().collect()
        };
        std::thread::scope(|s| {
            let patches = &patches;
            for t in 0..3usize {
                let dw = Arc::clone(&dw);
                s.spawn(move || {
                    for i in 0..400usize {
                        let p = patches[(i + t) % patches.len()];
                        if let Some(v) = dw.get_patch(DIVQ, p) {
                            assert_eq!(v.as_f64().as_slice()[0], p.0 as f64);
                        }
                    }
                });
            }
            let dw = Arc::clone(&dw);
            let gpu = Arc::clone(&gpu);
            let affected = affected.clone();
            s.spawn(move || {
                // The executor's fleet regrid prologue, verbatim order.
                dw.drain_pending_d2h();
                gpu.sync_d2h_all();
                dw.begin_regrid();
                gpu.invalidate_for_regrid_on(&affected);
            });
        });
        // Every parked field was drained before the generation bump.
        for &p in &patches {
            let v = dw.get_patch(DIVQ, p).expect("drained before generation bump");
            assert_eq!(v.as_f64().as_slice()[0], p.0 as f64);
        }
        assert_eq!(dw.drain_pending_d2h(), 0, "nothing left parked");
        let counters = gpu.counters_per_device();
        for (d, c) in counters.iter().enumerate() {
            assert_eq!(c.d2h_inflight, 0, "device {d} copy engine idle");
        }
        // The drains really were spread across the fleet, not serialized
        // through one engine.
        assert_eq!(
            counters.iter().map(|c| c.d2h_transfers).sum::<u64>(),
            patches.len() as u64
        );
        assert!(
            counters.iter().filter(|c| c.d2h_transfers > 0).count() >= 2,
            "sticky affinity should use more than one device's engine"
        );
        // Eviction was per-device: affected devices end empty...
        for &d in &affected {
            assert!(gpu.get_level_on(d, ABSKG, 0).is_none(), "stale replica on device {d}");
            assert_eq!(gpu.patch_entries_on(d), 0);
            assert_eq!(gpu.device_at(d).used(), 0, "device {d} not evicted clean");
        }
        // ...while untouched devices keep their replicas resident and
        // revalidate them the next epoch with zero PCIe traffic.
        gpu.begin_timestep();
        for d in (0..NDEV).filter(|d| !affected.contains(d)) {
            assert_eq!(gpu.level_entries_on(d), 1, "device {d} replica evicted needlessly");
            let before = gpu.device_at(d).counters().h2d_bytes;
            gpu.ensure_level_fresh_on(d, ABSKG, 0, || {
                FieldData::F64(CcVariable::filled(Region::cube(8), 1.0))
            })
            .unwrap();
            assert_eq!(
                gpu.device_at(d).counters().h2d_bytes,
                before,
                "unchanged replica re-uploaded on device {d}"
            );
        }
        // Full invalidation returns every device in the fleet to zero.
        gpu.invalidate_for_regrid();
        for (d, c) in gpu.counters_per_device().iter().enumerate() {
            assert_eq!(c.used, 0, "device {d} leaked bytes");
        }
    }
}

/// Submit/cancel storm against the multi-tenant radiation server: a mixed
/// stream of GPU, CPU, regrid-enabled and high-priority jobs where a third
/// are canceled immediately (usually still queued) and a third are raced
/// by a cancel thread mid-run. Whatever the interleaving: no job may fail,
/// the ledger must reconcile (done + canceled = submitted), and after
/// drain + shutdown the shared device fleet must be bone dry — zero
/// resident bytes, zero `release_underflows`, idle copy engines, and the
/// sub-allocator's invariants intact on every device.
#[test]
fn radiation_server_submit_cancel_storm_drains_clean() {
    use std::time::Duration;
    use uintah::config::{JobPriority, RunConfig};
    use uintah_grid::RebalancePolicy;
    use uintah_serve::{JobOutcome, RadiationServer, ServeConfig};

    let server = RadiationServer::start(ServeConfig {
        workers: 3,
        gpus: 2,
        gpu_capacity_mb: 16,
        graph_cache_cap: 8,
        max_idle_slots: 2,
    });
    let base = RunConfig {
        fine_cells: 16,
        patch_size: 4,
        levels: 2,
        ranks: 2,
        threads: 1,
        nrays: 4,
        halo: 2,
        gpu: true,
        timesteps: 4,
        ..RunConfig::default()
    };
    const JOBS: usize = 12;
    let mut handles = Vec::with_capacity(JOBS);
    for i in 0..JOBS {
        let mut cfg = base.clone();
        match i % 4 {
            0 => {} // plain GPU tenant
            1 => {
                // Regridding tenant: rebalances ownership every step, so
                // cancels race the executor's migration machinery.
                cfg.regrid_interval = 1;
                cfg.regrid_policy = RebalancePolicy::CostedLpt;
                cfg.timesteps = 5;
            }
            2 => {
                // CPU tenant in a different slot shape.
                cfg.gpu = false;
                cfg.ranks = 1;
                cfg.levels = 1;
                cfg.fine_cells = 8;
            }
            _ => {
                cfg.priority = JobPriority::High;
                cfg.nrays = 6;
            }
        }
        let h = server.submit(cfg).expect("storm job admitted or queued");
        match i % 3 {
            0 => h.cancel(), // cancel immediately, usually while queued
            1 => {
                // Cancel from another thread mid-run.
                let racer = h.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_millis(3));
                    racer.cancel();
                });
            }
            _ => {} // run to completion
        }
        handles.push(h);
    }

    let (mut done, mut canceled) = (0u64, 0u64);
    for h in &handles {
        match h.wait() {
            JobOutcome::Done(report) => {
                assert!(report.stats.steps > 0, "completed job ran no steps");
                done += 1;
            }
            JobOutcome::Canceled => canceled += 1,
            JobOutcome::Failed(m) => panic!("job {} failed: {m}", h.id()),
        }
    }
    assert_eq!(done + canceled, JOBS as u64);

    server.drain();
    let stats = server.stats();
    assert_eq!(stats.completed + stats.canceled, JOBS as u64);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.active_jobs, 0);
    assert_eq!(stats.queued_jobs, 0);

    server.shutdown();
    assert_eq!(
        server.fleet().total_used(),
        0,
        "device meters must read zero after drain"
    );
    for (d, c) in server.fleet().counters_per_device().iter().enumerate() {
        assert_eq!(c.release_underflows, 0, "device {d}: meter drift");
        assert_eq!(c.d2h_inflight, 0, "device {d}: copy engine left in flight");
    }
    for d in server.fleet().devices() {
        d.validate_allocator().expect("sub-allocator invariants after the storm");
    }
}

/// LRU eviction racing a regrid: writer threads hammer an oversubscribed
/// device (12 patches cycling through room for ~6, forcing constant
/// eviction, host spill, and transparent re-upload) while a regrid thread
/// repeatedly invalidates the warehouse mid-storm. Invariants under the
/// race: no stale serves (every successful get returns the patch's one
/// true value), no leaked device bytes, no meter drift (the allocator's
/// free list stays coherent and `release_underflows == 0`), and the
/// eviction/spill counters reconcile exactly — every evicted byte of patch
/// data was spilled, and every re-upload round-tripped the same bytes.
#[test]
fn lru_eviction_racing_regrid_no_stale_serves_no_leaks() {
    use uintah::gpu::GpuDataWarehouse;
    let patch_bytes = 8usize.pow(3) * 8;
    // Room for six patches (plus slack); twelve in play → constant
    // pressure. Four worker threads pin at most four entries at any
    // moment, so an eviction victim always exists and puts never OOM.
    let device = GpuDevice::with_capacity("oversub", 6 * patch_bytes + 256);
    let dw = Arc::new(GpuDataWarehouse::new(device.clone()));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let dw = Arc::clone(&dw);
            s.spawn(move || {
                for i in 0..300usize {
                    let p = uintah_grid::PatchId(((i * 7 + t * 3) % 12) as u32);
                    let want = p.0 as f64;
                    let put = dw
                        .put_patch(DIVQ, p, FieldData::F64(CcVariable::filled(Region::cube(8), want)))
                        .expect("a victim always exists");
                    assert_eq!(put.data().as_f64().as_slice()[0], want);
                    drop(put);
                    // A get may miss (another thread's regrid or drop), but
                    // a hit — resident or re-uploaded from spill — must
                    // carry the patch's one true value.
                    if let Some(v) = dw.get_patch(DIVQ, p) {
                        assert_eq!(v.data().as_f64().as_slice()[0], want, "stale serve");
                    }
                    if i % 31 == 0 {
                        dw.drop_patch(DIVQ, p);
                    }
                    // Probe a patch this iteration did NOT put: under
                    // pressure it is often evicted, so this get exercises
                    // the transparent re-upload path — and must still see
                    // the one true value.
                    let q = uintah_grid::PatchId(((i * 5 + t) % 12) as u32);
                    if let Some(v) = dw.get_patch(DIVQ, q) {
                        assert_eq!(v.data().as_f64().as_slice()[0], q.0 as f64, "stale serve");
                    }
                }
            });
        }
        let dw = Arc::clone(&dw);
        s.spawn(move || {
            for _ in 0..20 {
                dw.invalidate_for_regrid();
                std::thread::yield_now();
            }
        });
    });
    let c = device.counters();
    assert!(c.evictions > 0, "the storm must actually oversubscribe");
    assert!(c.reuploads > 0, "spilled patches must come back");
    // Patch-only workload: eviction and spill reconcile one-to-one.
    assert_eq!(c.evictions, c.spills);
    assert_eq!(c.evicted_bytes, c.spilled_bytes);
    assert_eq!(c.spilled_bytes % patch_bytes as u64, 0);
    assert_eq!(c.reuploads_bytes % patch_bytes as u64, 0);
    // No meter drift: zero underflows, allocator invariants intact, and
    // clearing the databases returns the device to exactly zero.
    assert_eq!(c.release_underflows, 0);
    device.validate_allocator().expect("free list coherent after the storm");
    dw.clear_patch_db();
    dw.clear_level_db();
    assert_eq!(device.used(), 0, "no leaked device bytes");
    assert_eq!(dw.spill_entries(), 0);
    device.validate_allocator().unwrap();
}

/// H2D prefetch racing regrid + LRU eviction/spill: worker threads post
/// async uploads, materialize them through `get_patch`, and prefetch
/// level replicas against an oversubscribed two-device fleet (room for
/// ~6 patches per device, 12 in play) while a regrid thread repeatedly
/// invalidates — sometimes the whole fleet, sometimes one device.
/// Invariants under the race: no stale serves (every successful get
/// returns the patch's one true value), in-flight uploads for evicted or
/// invalidated entries are canceled rather than installed, and after the
/// storm the fleet drains to zero resident bytes with zero
/// `release_underflows`, idle copy engines in both directions, and the
/// sub-allocator's free list intact on every device.
#[test]
fn h2d_prefetch_racing_regrid_and_eviction_drains_clean() {
    use uintah::gpu::GpuDataWarehouse;
    let patch_bytes = 8usize.pow(3) * 8;
    let fleet = DeviceFleet::with_capacity(2, "oversub-h2d", 6 * patch_bytes + 256);
    let dw = Arc::new(GpuDataWarehouse::with_fleet_full(fleet, true, true, true, true));
    let level_host = FieldData::F64(CcVariable::filled(Region::cube(8), 1.0));
    std::thread::scope(|s| {
        for t in 0..4usize {
            let dw = Arc::clone(&dw);
            let level_host = level_host.clone();
            s.spawn(move || {
                for i in 0..300usize {
                    let p = uintah_grid::PatchId(((i * 7 + t * 3) % 12) as u32);
                    let want = p.0 as f64;
                    // Post the upload and let a later consumer materialize
                    // it; the handle itself pins nothing.
                    let data = FieldData::F64(CcVariable::filled(Region::cube(8), want));
                    dw.put_patch_async(DIVQ, p, &data).expect("a victim always exists");
                    // A get may miss (a regrid canceled the post), but a
                    // hit — materialized, resident, or re-uploaded from
                    // spill — must carry the patch's one true value.
                    if let Some(v) = dw.get_patch(DIVQ, p) {
                        assert_eq!(v.data().as_f64().as_slice()[0], want, "stale serve");
                    }
                    if i % 31 == 0 {
                        dw.drop_patch(DIVQ, p);
                    }
                    // Probe a patch this iteration did NOT put: often
                    // evicted or mid-upload, so this exercises the
                    // materialize-and-install and re-upload paths.
                    let q = uintah_grid::PatchId(((i * 5 + t) % 12) as u32);
                    if let Some(v) = dw.get_patch(DIVQ, q) {
                        assert_eq!(v.data().as_f64().as_slice()[0], q.0 as f64, "stale serve");
                    }
                    // Level-replica prefetch racing the same allocator and
                    // the regrid thread's cancellations.
                    if i % 16 == 0 {
                        dw.prefetch_level_on(t % 2, ABSKG, 0, &level_host);
                    }
                    if i % 16 == 8 {
                        let host = level_host.clone();
                        if let Ok(v) = dw.ensure_level_fresh_on(t % 2, ABSKG, 0, || host) {
                            assert_eq!(v.data().as_f64().as_slice()[0], 1.0, "stale replica");
                        }
                    }
                }
            });
        }
        let dw = Arc::clone(&dw);
        s.spawn(move || {
            for r in 0..20 {
                if r % 3 == 0 {
                    dw.invalidate_for_regrid_on(&[r % 2]);
                } else {
                    dw.invalidate_for_regrid();
                }
                std::thread::yield_now();
            }
        });
    });
    // Settle both copy engines, then cancel whatever posts are still
    // parked: the fleet must return to exactly zero.
    dw.sync_h2d_all();
    dw.sync_d2h_all();
    dw.clear_patch_db();
    dw.clear_level_db();
    assert_eq!(dw.pending_uploads(), 0, "no posts left parked");
    assert_eq!(dw.spill_entries(), 0);
    let counters = dw.counters_per_device();
    assert!(
        counters.iter().map(|c| c.evictions).sum::<u64>() > 0,
        "the storm must actually oversubscribe"
    );
    for (d, c) in counters.iter().enumerate() {
        assert_eq!(c.release_underflows, 0, "device {d}: meter drift");
        assert_eq!(c.h2d_inflight, 0, "device {d}: upload engine left in flight");
        assert_eq!(c.d2h_inflight, 0, "device {d}: drain engine left in flight");
        assert_eq!(dw.device_at(d).used(), 0, "device {d} leaked bytes");
        dw.device_at(d).validate_allocator().expect("free list coherent after the storm");
    }

    // The deterministic cancel-not-install tail: a post superseded by a
    // fresh write must never surface, and a post canceled by a regrid
    // must neither serve nor leak.
    let dw = GpuDataWarehouse::with_fleet_full(DeviceFleet::k20x(1), true, true, true, true);
    let p = uintah_grid::PatchId(0);
    let old = FieldData::F64(CcVariable::filled(Region::cube(8), 1.0));
    let pending = dw.put_patch_async(DIVQ, p, &old).unwrap();
    dw.put_patch(DIVQ, p, FieldData::F64(CcVariable::filled(Region::cube(8), 2.0))).unwrap();
    let v = dw.get_patch(DIVQ, p).expect("superseding write resident");
    assert_eq!(v.data().as_f64().as_slice()[0], 2.0, "superseded post must not install");
    drop((v, pending));
    let pending = dw.put_patch_async(DIVQ, p, &old).unwrap();
    drop(pending);
    dw.invalidate_for_regrid();
    assert!(dw.get_patch(DIVQ, p).is_none(), "canceled post must not serve");
    assert_eq!(dw.pending_uploads(), 0);
    dw.clear_patch_db();
    dw.clear_level_db();
    assert_eq!(dw.device().used(), 0, "canceled post leaked device bytes");
    assert_eq!(dw.device().counters().release_underflows, 0);
    dw.device().validate_allocator().unwrap();
}
