//! Cross-crate integration tests: the full RMCRT pipeline through the
//! distributed runtime, on CPU and on the simulated GPU, against the
//! serial reference solvers.

use std::sync::Arc;
use uintah::prelude::*;
use uintah_grid::CcVariable;

/// Gather the fine-level divQ field from a world result.
fn collect_divq(grid: &Grid, result: &uintah::runtime::WorldResult) -> CcVariable<f64> {
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ missing");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out
}

fn pipeline() -> RmcrtPipeline {
    RmcrtPipeline {
        params: RmcrtParams {
            nrays: 16,
            threshold: 1e-4,
            seed: 0xABCD,
            timestep: 0,
            sampling: uintah::rmcrt::sampling::RaySampling::Independent,
            ray_count: None,
        },
        halo: 4,
        problem: BurnsChriston::default(),
    }
}

#[test]
fn multilevel_pipeline_matches_reference_exactly() {
    // The runtime (ghost exchange, restriction windows, all-to-all,
    // gather/seal) must reproduce the serial reference bit-for-bit: the
    // RNG is a pure function of (cell, ray, timestep) and the assembled
    // properties must be identical.
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = pipeline();
    let reference = uintah::rmcrt::tasks::reference_multilevel(&grid, &p);
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let result = run_world(
        Arc::clone(&grid),
        decls,
        WorldConfig {
            nranks: 1,
            nthreads: 2,
            ..Default::default()
        },
    );
    let got = collect_divq(&grid, &result);
    for c in reference.region().cells() {
        assert_eq!(got[c], reference[c], "cell {c:?}");
    }
}

#[test]
fn rank_count_does_not_change_results() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let base = collect_divq(
        &grid,
        &run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig::default(),
        ),
    );
    for nranks in [2usize, 4, 6] {
        let result = run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks,
                nthreads: 2,
                ..Default::default()
            },
        );
        let got = collect_divq(&grid, &result);
        for c in base.region().cells() {
            assert_eq!(got[c], base[c], "nranks {nranks}, cell {c:?}");
        }
        assert!(result.total_messages() > 0);
    }
}

#[test]
fn gpu_pipeline_matches_cpu_pipeline() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = pipeline();
    let cpu = collect_divq(
        &grid,
        &run_world(
            Arc::clone(&grid),
            Arc::new(multilevel_decls(&grid, p, false)),
            WorldConfig {
                nranks: 2,
                nthreads: 2,
                ..Default::default()
            },
        ),
    );
    let result = run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, p, true)),
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            gpu_capacity: Some(512 << 20),
            ..Default::default()
        },
    );
    let gpu = collect_divq(&grid, &result);
    for c in cpu.region().cells() {
        assert_eq!(gpu[c], cpu[c], "cell {c:?}");
    }
    // The GPU actually participated.
    for rr in &result.ranks {
        let gdw = rr.gpu.as_ref().expect("gpu attached");
        let local_fine = result
            .dist
            .owned_by(rr.rank)
            .iter()
            .filter(|&&pid| grid.patch(pid).level_index() == grid.fine_level_index())
            .count() as u64;
        let counters = gdw.device().counters();
        assert_eq!(counters.kernels, local_fine);
        // Level DB: the 3 coarse replicas were uploaded exactly once each.
        assert_eq!(gdw.level_entries(), 3);
        // Per-patch H2D: 3 inputs; replicas once; divQ is device-produced
        // (no H2D) and crosses back once per patch (D2H).
        assert_eq!(counters.d2h_transfers, local_fine);
        assert_eq!(counters.h2d_transfers, 3 + 3 * local_fine);
    }
}

#[test]
fn level_db_reduces_pcie_traffic_end_to_end() {
    // E4 through the full pipeline: with the level DB off, every patch
    // task re-uploads the coarse replicas. Geometry chosen so the coarse
    // replica dominates per-patch inputs: RR 2 (coarse 16³ for fine 32³),
    // small halo.
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(2)
            .refinement_ratio(2)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 2,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 1,
        problem: BurnsChriston::default(),
    };
    let run = |level_db: bool| -> (u64, u64) {
        let result = run_world(
            Arc::clone(&grid),
            Arc::new(multilevel_decls(&grid, p, true)),
            WorldConfig {
                nranks: 1,
                nthreads: 4,
                gpu_capacity: Some(2 << 30),
                gpu_level_db: level_db,
                ..Default::default()
            },
        );
        let c = result.ranks[0].gpu.as_ref().unwrap().device().counters();
        (c.h2d_bytes, c.peak)
    };
    let (with_bytes, with_peak) = run(true);
    let (without_bytes, without_peak) = run(false);
    assert!(
        without_bytes > 2 * with_bytes,
        "PCIe bytes: with level DB {with_bytes}, without {without_bytes}"
    );
    assert!(
        without_peak > with_peak,
        "peak device memory: with {with_peak}, without {without_peak}"
    );
}

#[test]
fn single_level_pipeline_matches_its_reference() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = pipeline();
    let reference = uintah::rmcrt::tasks::reference_single_level(&grid, &p);
    let decls = Arc::new(single_level_decls(&grid, p, false));
    for nranks in [1usize, 3] {
        let result = run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks,
                nthreads: 2,
                ..Default::default()
            },
        );
        let got = collect_divq(&grid, &result);
        for c in reference.region().cells() {
            assert_eq!(got[c], reference[c], "nranks {nranks} cell {c:?}");
        }
    }
}

#[test]
fn multilevel_sends_fewer_bytes_than_single_level() {
    // The paper's core claim: the AMR data-onion replaces fine-mesh
    // replication with coarse replicas, slashing communication volume.
    let grid = Arc::new(BurnsChriston::small_grid(32, 8));
    let mut p = pipeline();
    p.params.nrays = 4;
    p.halo = 2;
    let cfg = WorldConfig {
        nranks: 8,
        nthreads: 2,
        ..Default::default()
    };
    let ml = run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, p, false)),
        cfg.clone(),
    );
    let sl = run_world(
        Arc::clone(&grid),
        Arc::new(single_level_decls(&grid, p, false)),
        cfg,
    );
    assert!(
        sl.total_bytes() > 5 * ml.total_bytes(),
        "single-level {} B vs multi-level {} B",
        sl.total_bytes(),
        ml.total_bytes()
    );
    // And the gap widens with rank count: replication volume grows
    // linearly with ranks, the data-onion's does not (its receives are a
    // fixed coarse replica plus halos).
}

#[test]
fn three_level_pipeline_matches_reference() {
    // 3 levels exercise the intermediate-level ROI transition path:
    // fine 32³ → mid 16³ → coarse 8³ (RR 2), 8³ patches.
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(3)
            .refinement_ratio(2)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    assert_eq!(grid.num_levels(), 3);
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 8,
            threshold: 1e-4,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let reference = uintah::rmcrt::tasks::reference_multilevel(&grid, &p);
    for nranks in [1usize, 3] {
        let result = run_world(
            Arc::clone(&grid),
            Arc::new(multilevel_decls(&grid, p, false)),
            WorldConfig {
                nranks,
                nthreads: 2,
                ..Default::default()
            },
        );
        let got = collect_divq(&grid, &result);
        for c in reference.region().cells() {
            assert_eq!(got[c], reference[c], "nranks {nranks} cell {c:?}");
        }
    }
}

#[test]
fn aggregated_level_windows_same_results_fewer_messages() {
    // Uintah-style rank-pair message packing: all per-variable level
    // windows of one producer instance travel in one bundle. Results must
    // be bit-identical; the all-to-all message count drops ~3x (3 bundled
    // property variables).
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let base_cfg = WorldConfig {
        nranks: 4,
        nthreads: 2,
        ..Default::default()
    };
    let plain = run_world(Arc::clone(&grid), Arc::clone(&decls), base_cfg.clone());
    let packed = run_world(
        Arc::clone(&grid),
        Arc::clone(&decls),
        WorldConfig {
            aggregate_level_windows: true,
            ..base_cfg
        },
    );
    let a = collect_divq(&grid, &plain);
    let b = collect_divq(&grid, &packed);
    for c in a.region().cells() {
        assert_eq!(a[c], b[c], "cell {c:?}");
    }
    // Level windows: every rank broadcasts each of its 64/4=16 fine
    // patches' windows to 3 peers, for 3 variables → 576 messages plain,
    // 192 bundles packed; ghost messages are unaffected.
    let level_plain = 64 * 3 * 3;
    let level_packed = 64 * 3;
    assert_eq!(
        plain.total_messages() - packed.total_messages(),
        level_plain - level_packed,
        "bundling must cut exactly the level-window messages: {} vs {}",
        packed.total_messages(),
        plain.total_messages()
    );
    // Payload bytes stay in the same ballpark (bundling adds small headers).
    assert!(packed.total_bytes() <= plain.total_bytes() + plain.total_messages() as u64 * 16);
}

#[test]
fn aggregated_three_level_pipeline_matches_reference() {
    // Bundles spanning two coarse levels (L0 + L1 windows in one message).
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(32))
            .num_levels(3)
            .refinement_ratio(2)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let reference = uintah::rmcrt::tasks::reference_multilevel(&grid, &p);
    let result = run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, p, false)),
        WorldConfig {
            nranks: 3,
            nthreads: 2,
            aggregate_level_windows: true,
            ..Default::default()
        },
    );
    let got = collect_divq(&grid, &result);
    for c in reference.region().cells() {
        assert_eq!(got[c], reference[c], "cell {c:?}");
    }
}

#[test]
fn more_ranks_than_patches_is_harmless() {
    // Ranks owning no patches must compile empty graphs, terminate
    // immediately and receive nothing.
    let grid = Arc::new(BurnsChriston::small_grid(16, 8)); // 8 fine patches
    let p = pipeline();
    let reference = uintah::rmcrt::tasks::reference_multilevel(&grid, &p);
    let result = run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, p, false)),
        WorldConfig {
            nranks: 12,
            nthreads: 2,
            ..Default::default()
        },
    );
    let got = collect_divq(&grid, &result);
    for c in reference.region().cells() {
        assert_eq!(got[c], reference[c]);
    }
    let idle_ranks = result
        .ranks
        .iter()
        .filter(|r| r.stats[0].tasks_executed == 0)
        .count();
    assert!(idle_ranks >= 3, "expected idle ranks, got {idle_ranks}");
}

#[test]
fn repeated_timesteps_are_reproducible() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = pipeline();
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let cfg = WorldConfig {
        nranks: 2,
        nthreads: 2,
        timesteps: 2,
        ..Default::default()
    };
    let a = collect_divq(&grid, &run_world(Arc::clone(&grid), Arc::clone(&decls), cfg.clone()));
    let b = collect_divq(&grid, &run_world(Arc::clone(&grid), decls, cfg));
    for c in a.region().cells() {
        assert_eq!(a[c], b[c]);
    }
}

#[test]
fn all_request_stores_agree_through_full_pipeline() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let mut results = Vec::new();
    for store in [StoreKind::WaitFree, StoreKind::Mutex, StoreKind::Racy] {
        let r = run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 3,
                nthreads: 2,
                store,
                ..Default::default()
            },
        );
        results.push(collect_divq(&grid, &r));
    }
    for c in results[0].region().cells() {
        assert_eq!(results[0][c], results[1][c]);
        assert_eq!(results[0][c], results[2][c]);
    }
}
