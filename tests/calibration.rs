//! The measured-calibration pipeline, end to end (DESIGN §8, E12):
//! a real executor run → `CalibrationSnapshot` → serialized text →
//! parsed back → bit-identical `MachineParams`; plus run-to-run
//! determinism of every structural counter.

use std::sync::Arc;
use uintah::prelude::*;

fn calibration_run() -> WorldResult {
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let pipeline = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            ..Default::default()
        },
        halo: 2,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, pipeline, true));
    run_world(
        Arc::clone(&grid),
        decls,
        WorldConfig {
            nranks: 2,
            nthreads: 2,
            timesteps: 2,
            gpu_capacity: Some(1 << 30),
            ..Default::default()
        },
    )
}

#[test]
fn snapshot_round_trip_yields_bit_identical_machine_params() {
    let snap = calibration_run().calibration_snapshot();
    assert!(snap.steps > 0 && !snap.devices.is_empty(), "run produced no measurement");

    // Serialize → parse → field-for-field equality (all-integer format).
    let text = snap.to_text();
    let back = CalibrationSnapshot::from_text(&text).expect("parse own serialization");
    assert_eq!(snap, back);
    assert_eq!(text, back.to_text(), "re-serialization must reproduce the text");

    // Calibrating from the original and from the parsed copy must give
    // bit-identical MachineParams — the snapshot is the whole interchange.
    let scale = CalibrationScale::host_to_titan(4.0 * 11.0);
    let a = MachineParams::from_snapshot(MachineParams::titan(), &snap, &scale);
    let b = MachineParams::from_snapshot(MachineParams::titan(), &back, &scale);
    assert_eq!(a.gpu_cellsteps_per_s.to_bits(), b.gpu_cellsteps_per_s.to_bits());
    assert_eq!(a.cpu_cellsteps_per_s.to_bits(), b.cpu_cellsteps_per_s.to_bits());
    assert_eq!(a.pcie_bw.to_bits(), b.pcie_bw.to_bits());
    assert_eq!(a.msg_cpu_cost.to_bits(), b.msg_cpu_cost.to_bits());

    // Same for the measured cost profile.
    let pa = CostProfile::from_snapshot(&snap);
    let pb = CostProfile::from_snapshot(&back);
    assert_eq!(pa, pb);
    assert!(!pa.is_uniform(), "a real run must measure per-patch costs");
}

#[test]
fn identical_runs_produce_structurally_equal_snapshots() {
    let a = calibration_run().calibration_snapshot();
    let b = calibration_run().calibration_snapshot();
    // Wall-clock fields legitimately differ; every deterministic counter
    // (steps, tasks, messages, bytes, launches, invocations, patch
    // membership) must match exactly.
    assert!(
        a.structural_eq(&b),
        "two identical runs disagreed on structural counters:\n--- a:\n{}--- b:\n{}",
        a.to_text(),
        b.to_text()
    );
    assert_eq!(a.kernel_totals().invocations, b.kernel_totals().invocations);
    assert_eq!(a.devices.len(), b.devices.len());
}
