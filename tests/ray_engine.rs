//! Bit-identity pins for the SoA packet ray engine.
//!
//! Every tracer in the stack (region solve, scattering, wall flux,
//! radiometer) now marches through `rmcrt_core::packet`. These tests pin
//! their outputs to the exact bits the pre-packet scalar marcher produced,
//! so the refactor is provably a pure restructuring: same FP operations in
//! the same order, packaged differently. If a future change to the engine
//! alters any pinned value, it changed the physics stream — intentionally
//! or not — and must re-justify the new bits.
//!
//! Also here: the ROI-exit nudge regression (cell spacings spanning
//! 1e-6..1e2 m) and the fixed-vs-adaptive ray-count equivalence.

use uintah::prelude::*;
use uintah::rmcrt::flux::{face_incident_flux, Face, FluxParams};
use uintah::rmcrt::radiometer::Radiometer;
use uintah::rmcrt::scatter::{
    div_q_with_scattering, trace_ray_collision, PhaseFunction, ScatteringMedium,
};
use uintah::rmcrt::solver::two_level_stack;
use uintah::rmcrt::{RaySampling, WALL_CELL};

/// The reference scenario of the pre-refactor capture: uniform κ=0.7,
/// S=0.9 medium inside a grey wall shell (ε=0.8, S_w=1.7).
fn scatter_props(n: i32) -> LevelProps {
    let mut props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 0.7, 0.9);
    for c in props.region.cells() {
        let e = props.region.extent();
        if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
            props.cell_type[c] = WALL_CELL;
            props.abskg[c] = 0.8;
            props.sigma_t4_over_pi[c] = 1.7;
        }
    }
    props
}

fn single_stack(props: &LevelProps) -> [TraceLevel<'_>; 1] {
    [TraceLevel {
        props,
        roi: props.region,
    }]
}

/// Region solve in Fixed mode reproduces the pre-refactor scalar marcher
/// bit for bit, under both ray-sampling strategies.
#[test]
fn solve_region_matches_prerefactor_bits() {
    let props = scatter_props(10);
    let stack = single_stack(&props);
    let expected = [
        (
            RaySampling::Independent,
            0x412bdd2805372a9cu64, // wrapping sum of divQ bits over the region
            0xc007e6b8cfd97e68u64, // divQ bits at cell (3,4,5)
        ),
        (
            RaySampling::LatinHypercube,
            0x40eeb1f4dea77fcf,
            0xc007b179b22f951b,
        ),
    ];
    for (sampling, want_sum, want_cell) in expected {
        let params = RmcrtParams {
            nrays: 9,
            threshold: 1e-4,
            seed: 0x5EED5,
            timestep: 2,
            sampling,
            ..Default::default()
        };
        let out = solve_region(&stack, props.region, &params);
        let mut sum = 0u64;
        for &v in out.as_slice() {
            sum = sum.wrapping_add(v.to_bits());
        }
        assert_eq!(sum, want_sum, "{sampling:?} checksum");
        assert_eq!(out[IntVector::new(3, 4, 5)].to_bits(), want_cell, "{sampling:?} cell");
    }
}

/// Scattering collision estimator (per-ray and per-cell divQ) reproduces
/// the pre-refactor scalar marcher bit for bit across media: pure
/// absorber, isotropic scatterer, forward-peaked Henyey–Greenstein.
#[test]
fn scattering_matches_prerefactor_bits() {
    let props = scatter_props(12);
    let media = [
        (
            ScatteringMedium {
                sigma_s: 0.0,
                phase: PhaseFunction::Isotropic,
            },
            [
                0x3feccccccccccccdu64,
                0x3feccccccccccccd,
                0x3feccccccccccccd,
                0x3ff5c28f5c28f5c3,
            ],
            0xc0084739f3b48bcau64,
        ),
        (
            ScatteringMedium {
                sigma_s: 2.5,
                phase: PhaseFunction::Isotropic,
            },
            [
                0x3ff1244de6666666,
                0x3ff1244de6666666,
                0x3ff2e46666666666,
                0x3ff08ac342666666,
            ],
            0xc003bb627b5b8e2f,
        ),
        (
            ScatteringMedium {
                sigma_s: 4.0,
                phase: PhaseFunction::HenyeyGreenstein(0.4),
            },
            [
                0x3ff242e05cfc5134,
                0x3ff1afa81221e76d,
                0x3ff242e05cfc5134,
                0x3ff242e05cfc5134,
            ],
            0xc0046bb214ee7141,
        ),
    ];
    for (medium, ray_bits, divq_bits) in media {
        for (r, want) in ray_bits.into_iter().enumerate() {
            let mut rng = CellRng::new(0xABCD, IntVector::new(5, 6, 7), r as u32, 3);
            let dir = rng.direction();
            let origin = rng.point_in_cell(props.cell_lo(IntVector::new(5, 6, 7)), props.dx);
            let v = trace_ray_collision(&props, &medium, origin, dir, &mut rng, 1e-3);
            assert_eq!(v.to_bits(), want, "σs={} ray {r}", medium.sigma_s);
        }
        let dq =
            div_q_with_scattering(&props, &medium, IntVector::new(4, 5, 6), 64, 1e-3, 0xC0FFEE);
        assert_eq!(dq.to_bits(), divq_bits, "σs={} divQ", medium.sigma_s);
    }
}

/// Wall flux through the packet engine reproduces the scalar bits.
#[test]
fn wall_flux_matches_prerefactor_bits() {
    let props = scatter_props(10);
    let stack = single_stack(&props);
    let q = face_incident_flux(
        &stack,
        IntVector::new(1, 5, 5),
        Face::XMinus,
        &FluxParams {
            nrays: 50,
            threshold: 1e-4,
            seed: 0xF1F1,
        },
    );
    assert_eq!(q.to_bits(), 0x400df48cce23ac68);
}

/// Radiometer through the packet engine reproduces the scalar bits.
#[test]
fn radiometer_matches_prerefactor_bits() {
    let props = scatter_props(10);
    let stack = single_stack(&props);
    let r = Radiometer {
        position: Point::new(0.5, 0.5, 0.5),
        normal: Vector::new(1.0, 0.0, 0.0),
        half_angle: 0.6,
        nrays: 40,
        seed: 0x11AD,
    };
    assert_eq!(r.measure(&stack, 1e-4).to_bits(), 0x3ff3d57d53b2886b);
}

/// ROI-exit placement regression: a ray leaving a fine ROI must land in
/// the *correct* coarse cell for cell spacings spanning eight orders of
/// magnitude. The coarse wall cells carry per-cell emission, so a
/// one-cell misplacement at the ROI exit changes the answer by several
/// percent — far outside the 1e-6 tolerance.
///
/// The historical exit nudge was an absolute 1e-10 m, which is either a
/// macroscopic fraction of a fine cell (tiny domains) or below the
/// representable resolution of the coordinates (large ones). The engine
/// now snaps the stepped coordinate onto the face and offsets it by a
/// *cell-relative* `FACE_NUDGE`.
#[test]
fn roi_exit_lands_in_correct_coarse_cell_across_scales() {
    // Direction with an oblique exit: leaves the ROI through +x, then
    // crosses coarse cells in y/z before the +x wall.
    let v = Vector::new(1.0, 0.35, 0.2);
    let dir = v.normalized();
    for scale in [1e-6f64, 1e-2, 1.0, 1e2] {
        // Domain [0, 8s]³: coarse 4³ at dx=2s (wall shell on the
        // boundary), fine 8³ at dx=s, fine ROI = cells [2,5)³.
        let kappa = 0.25 / scale;
        let fine = LevelProps::uniform(Region::cube(8), Vector::splat(scale), kappa, 0.0);
        let mut coarse =
            LevelProps::uniform(Region::cube(4), Vector::splat(2.0 * scale), kappa, 0.0);
        for c in coarse.region.cells() {
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == 3 || c.y == 3 || c.z == 3 {
                coarse.cell_type[c] = WALL_CELL;
                coarse.abskg[c] = 1.0; // black wall
                coarse.sigma_t4_over_pi[c] =
                    1.0 + 0.1 * (c.x as f64 + 2.0 * c.y as f64 + 3.0 * c.z as f64);
            }
        }
        let roi = Region::new(IntVector::splat(2), IntVector::splat(5));
        let stack = two_level_stack(&coarse, &fine, roi);
        // From the domain centre: exits the ROI at x=5s (coarse flow cell
        // (2,2,2)), reaches the wall face x=6s inside wall cell (3,2,2).
        let origin = Point::new(4.0 * scale, 4.0 * scale, 4.0 * scale);
        let got = trace_ray(&stack, origin, dir, 1e-12);
        let s_wall = 1.0 + 0.1 * (3.0 + 2.0 * 2.0 + 3.0 * 2.0);
        let path = 2.0 * scale / dir.x; // origin → wall face along the ray
        let want = s_wall * (-kappa * path).exp();
        let rel = (got - want).abs() / want;
        assert!(
            rel < 1e-6,
            "scale {scale}: sumI {got} vs analytic {want} (rel {rel})"
        );
    }
}

/// Adaptive ray counts reach the fixed-mode answer within 1% while
/// spending fewer rays, and Fixed mode is bit-identical to the plain
/// `nrays` path.
#[test]
fn adaptive_matches_fixed_with_fewer_rays() {
    let props = scatter_props(10);
    let stack = single_stack(&props);
    let region = Region::new(IntVector::splat(3), IntVector::splat(7));
    let fixed_params = RmcrtParams {
        nrays: 256,
        threshold: 1e-4,
        seed: 0xADA,
        ..Default::default()
    };
    let (fixed, fixed_stats) =
        solve_region_with_stats(&stack, region, &fixed_params, &ExecSpace::Serial);

    // Fixed mode expressed explicitly must be bit-identical.
    let explicit = RmcrtParams {
        ray_count: Some(RayCountMode::Fixed(256)),
        ..fixed_params
    };
    let (fixed2, _) = solve_region_with_stats(&stack, region, &explicit, &ExecSpace::Serial);
    for (a, b) in fixed.as_slice().iter().zip(fixed2.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    let adaptive_params = RmcrtParams {
        ray_count: Some(RayCountMode::Adaptive {
            min: 32,
            max: 256,
            rel_var_target: 0.02,
        }),
        ..fixed_params
    };
    let (adaptive, stats) =
        solve_region_with_stats(&stack, region, &adaptive_params, &ExecSpace::Serial);
    assert!(
        stats.total_rays < fixed_stats.total_rays,
        "adaptive {} rays vs fixed {}",
        stats.total_rays,
        fixed_stats.total_rays
    );
    // Per cell both estimates carry Monte Carlo noise, so the per-cell
    // bound is loose; the region mean (64 cells) must agree within 1%.
    let mut mean_a = 0.0;
    let mut mean_f = 0.0;
    for (c, &v) in adaptive.iter() {
        let f = fixed[c];
        let rel = (v - f).abs() / f.abs().max(1e-12);
        assert!(rel < 0.05, "cell {c:?}: adaptive {v} vs fixed {f} (rel {rel})");
        mean_a += v;
        mean_f += f;
    }
    let rel = (mean_a - mean_f).abs() / mean_f.abs();
    assert!(rel < 0.01, "region mean: adaptive {mean_a} vs fixed {mean_f} (rel {rel})");
}
