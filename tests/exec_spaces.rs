//! Cross-space equivalence: every hot kernel dispatched through
//! `uintah-exec` is bit-identical on Serial, Threads(n) and the metered
//! Device space. Determinism is the contract that makes GPU offload a
//! pure performance decision (paper §III-B: the same slab-ordered math
//! runs everywhere).

use uintah::prelude::*;
use uintah::rmcrt::dom::{self, SnOrder};
use uintah::rmcrt::solver::two_level_stack;

fn spaces() -> Vec<(&'static str, ExecSpace)> {
    vec![
        ("serial", ExecSpace::Serial),
        ("threads2", ExecSpace::Threads(2)),
        ("threads3", ExecSpace::Threads(3)),
        ("threads7", ExecSpace::Threads(7)),
        ("device", ExecSpace::device(GpuDevice::k20x())),
    ]
}

#[test]
fn multilevel_trace_is_bit_identical_on_every_space() {
    // Seeded 2-level Burns & Christon problem (RR 4, 16³ fine + 4³ coarse).
    let grid = BurnsChriston::small_grid(16, 8);
    let bc = BurnsChriston::default();
    let coarse = bc.props_for_level(grid.level(0));
    let fine = bc.props_for_level(grid.level(1));
    let region = Region::cube(16);
    let stack = two_level_stack(&coarse, &fine, region);
    let params = RmcrtParams {
        nrays: 5,
        threshold: 1e-4,
        seed: 42,
        ..Default::default()
    };

    let reference = solve_region(&stack, region, &params);
    for (name, space) in spaces() {
        let got = solve_region_exec(&stack, region, &params, &space);
        assert_eq!(got, reference, "trace differs on {name}");
    }
}

#[test]
fn dom_sweeps_are_bit_identical_on_every_space() {
    let grid = BurnsChriston::small_grid(16, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let reference = dom::solve(&props, SnOrder::S4);
    for (name, space) in spaces() {
        let got = dom::solve_exec(&props, SnOrder::S4, &space);
        assert_eq!(got.g, reference.g, "DOM G differs on {name}");
        assert_eq!(got.div_q, reference.div_q, "DOM divQ differs on {name}");
    }
}

#[test]
fn restriction_is_bit_identical_on_every_space() {
    let rr = IntVector::splat(4);
    let fine_r = Region::cube(16);
    let mut fine = CcVariable::<f64>::new(fine_r);
    fine.fill_with(|c| ((c.x * 13 + c.y * 5 + c.z * 2) as f64 * 0.37).cos());
    let coarse_r = Region::cube(4);
    let reference = uintah::grid::restriction::restrict_average(&fine, rr, coarse_r);
    for (name, space) in spaces() {
        let got = ops::restrict_average(&space, &fine, rr, coarse_r);
        assert_eq!(got, reference, "restriction differs on {name}");
    }
}

#[test]
fn energy_rhs_is_bit_identical_on_every_space() {
    let step_once = |space: ExecSpace| -> Vec<f64> {
        let n = 12;
        let region = Region::cube(n);
        let mut s = EnergySolver::new(region, Vector::splat(1.0 / n as f64), 300.0);
        s.space = space;
        s.temperature_mut()
            .fill_with(|c| 300.0 + (c.x * c.x + 3 * c.y + 7 * c.z) as f64);
        s.heat_source.fill_with(|c| if c.z < 3 { 2e5 } else { 0.0 });
        s.div_q.fill_with(|c| (c.x + c.y) as f64 * 1e3);
        let dt = s.stable_dt();
        s.step(dt);
        s.temperature().as_slice().to_vec()
    };
    let reference = step_once(ExecSpace::Serial);
    for (name, space) in spaces() {
        let got = step_once(space);
        assert!(
            got.iter().zip(&reference).all(|(a, b)| a == b),
            "energy RHS differs on {name}"
        );
    }
}

#[test]
fn device_space_meters_while_matching_serial() {
    // The Device space is not just equivalent — it meters. One dispatch
    // per solve_region_exec, one invocation per cell.
    let grid = BurnsChriston::small_grid(16, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    let params = RmcrtParams {
        nrays: 2,
        threshold: 1e-3,
        ..Default::default()
    };
    let device = GpuDevice::k20x();
    let space = ExecSpace::device(device.clone());
    let got = solve_region_exec(&stack, props.region, &params, &space);
    assert_eq!(got, solve_region(&stack, props.region, &params));
    let ks = space.kernel_stats().expect("device space records stats");
    assert_eq!(ks.launches, 1);
    assert_eq!(ks.invocations, props.region.volume() as u64);
    assert_eq!(device.counters().kernels, 1);
}
