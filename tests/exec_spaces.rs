//! Cross-space equivalence: every hot kernel dispatched through
//! `uintah-exec` is bit-identical on Serial, Threads(n) and the metered
//! Device space. Determinism is the contract that makes GPU offload a
//! pure performance decision (paper §III-B: the same slab-ordered math
//! runs everywhere).

use std::sync::Arc;
use uintah::prelude::*;
use uintah::rmcrt::dom::{self, SnOrder};
use uintah::rmcrt::solver::two_level_stack;

fn spaces() -> Vec<(&'static str, ExecSpace)> {
    vec![
        ("serial", ExecSpace::Serial),
        ("threads2", ExecSpace::Threads(2)),
        ("threads3", ExecSpace::Threads(3)),
        ("threads7", ExecSpace::Threads(7)),
        ("device", ExecSpace::device(GpuDevice::k20x())),
    ]
}

#[test]
fn multilevel_trace_is_bit_identical_on_every_space() {
    // Seeded 2-level Burns & Christon problem (RR 4, 16³ fine + 4³ coarse).
    let grid = BurnsChriston::small_grid(16, 8);
    let bc = BurnsChriston::default();
    let coarse = bc.props_for_level(grid.level(0));
    let fine = bc.props_for_level(grid.level(1));
    let region = Region::cube(16);
    let stack = two_level_stack(&coarse, &fine, region);
    let params = RmcrtParams {
        nrays: 5,
        threshold: 1e-4,
        seed: 42,
        ..Default::default()
    };

    let reference = solve_region(&stack, region, &params);
    for (name, space) in spaces() {
        let got = solve_region_exec(&stack, region, &params, &space);
        assert_eq!(got, reference, "trace differs on {name}");
    }
}

#[test]
fn dom_sweeps_are_bit_identical_on_every_space() {
    let grid = BurnsChriston::small_grid(16, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let reference = dom::solve(&props, SnOrder::S4);
    for (name, space) in spaces() {
        let got = dom::solve_exec(&props, SnOrder::S4, &space);
        assert_eq!(got.g, reference.g, "DOM G differs on {name}");
        assert_eq!(got.div_q, reference.div_q, "DOM divQ differs on {name}");
    }
}

#[test]
fn restriction_is_bit_identical_on_every_space() {
    let rr = IntVector::splat(4);
    let fine_r = Region::cube(16);
    let mut fine = CcVariable::<f64>::new(fine_r);
    fine.fill_with(|c| ((c.x * 13 + c.y * 5 + c.z * 2) as f64 * 0.37).cos());
    let coarse_r = Region::cube(4);
    let reference = uintah::grid::restriction::restrict_average(&fine, rr, coarse_r);
    for (name, space) in spaces() {
        let got = ops::restrict_average(&space, &fine, rr, coarse_r);
        assert_eq!(got, reference, "restriction differs on {name}");
    }
}

#[test]
fn energy_rhs_is_bit_identical_on_every_space() {
    let step_once = |space: ExecSpace| -> Vec<f64> {
        let n = 12;
        let region = Region::cube(n);
        let mut s = EnergySolver::new(region, Vector::splat(1.0 / n as f64), 300.0);
        s.space = space;
        s.temperature_mut()
            .fill_with(|c| 300.0 + (c.x * c.x + 3 * c.y + 7 * c.z) as f64);
        s.heat_source.fill_with(|c| if c.z < 3 { 2e5 } else { 0.0 });
        s.div_q.fill_with(|c| (c.x + c.y) as f64 * 1e3);
        let dt = s.stable_dt();
        s.step(dt);
        s.temperature().as_slice().to_vec()
    };
    let reference = step_once(ExecSpace::Serial);
    for (name, space) in spaces() {
        let got = step_once(space);
        assert!(
            got.iter().zip(&reference).all(|(a, b)| a == b),
            "energy RHS differs on {name}"
        );
    }
}

#[test]
fn device_space_meters_while_matching_serial() {
    // The Device space is not just equivalent — it meters. One dispatch
    // per solve_region_exec, one invocation per cell.
    let grid = BurnsChriston::small_grid(16, 8);
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    let params = RmcrtParams {
        nrays: 2,
        threshold: 1e-3,
        ..Default::default()
    };
    let device = GpuDevice::k20x();
    let space = ExecSpace::device(device.clone());
    let got = solve_region_exec(&stack, props.region, &params, &space);
    assert_eq!(got, solve_region(&stack, props.region, &params));
    let ks = space.kernel_stats().expect("device space records stats");
    assert_eq!(ks.launches, 1);
    assert_eq!(ks.invocations, props.region.volume() as u64);
    assert_eq!(device.counters().kernels, 1);
}

/// Gather the fine-level divQ field from a world result.
fn collect_divq(grid: &Grid, result: &uintah::runtime::WorldResult) -> CcVariable<f64> {
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ missing");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out
}

#[test]
fn divq_is_bit_identical_across_fleet_sizes_and_thread_counts() {
    // Device count is a placement decision, never a numerical one: the
    // kernels are slab/plane-canonical, so spreading a rank's patches over
    // 1, 2, 4 or 6 simulated K20Xs (under any worker-thread count) must
    // reproduce the single-device divQ field bit-for-bit.
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 4,
            threshold: 1e-3,
            seed: 0xF1EE7,
            ..Default::default()
        },
        halo: 4,
        problem: BurnsChriston::default(),
    };
    let decls = Arc::new(multilevel_decls(&grid, p, true));
    let run = |gpus_per_rank: usize, nthreads: usize, gpu_affinity: GpuAffinity, timesteps: usize| {
        run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 2,
                nthreads,
                gpu_capacity: Some(512 << 20),
                gpus_per_rank,
                gpu_affinity,
                timesteps,
                ..Default::default()
            },
        )
    };
    let reference = collect_divq(&grid, &run(1, 2, GpuAffinity::Sticky, 1));
    for devices in [1usize, 2, 4, 6] {
        for threads in [1usize, 2, 3, 7] {
            let result = run(devices, threads, GpuAffinity::Sticky, 1);
            let got = collect_divq(&grid, &result);
            for c in reference.region().cells() {
                assert_eq!(
                    got[c], reference[c],
                    "divQ differs at {c:?} with {devices} devices x {threads} threads"
                );
            }
            // Every fine patch ran exactly one trace kernel, on *some*
            // device of its rank's fleet — fleet size redistributes
            // launches but never changes their total.
            for rr in &result.ranks {
                let gdw = rr.gpu.as_ref().expect("gpu attached");
                assert_eq!(gdw.num_devices(), devices);
                let local_fine = result
                    .dist
                    .owned_by(rr.rank)
                    .iter()
                    .filter(|&&pid| grid.patch(pid).level_index() == grid.fine_level_index())
                    .count() as u64;
                let per_dev = gdw.counters_per_device();
                assert_eq!(
                    per_dev.iter().map(|c| c.kernels).sum::<u64>(),
                    local_fine,
                    "{devices} devices x {threads} threads"
                );
            }
        }
    }
    // The affinity policy is equally invisible to the numerics: LPT
    // re-homing from measured per-patch costs (applied between the two
    // timesteps) only moves whole patches to other devices.
    let two_step_ref = collect_divq(&grid, &run(1, 2, GpuAffinity::Sticky, 2));
    let balanced = collect_divq(&grid, &run(4, 3, GpuAffinity::CostBalanced, 2));
    for c in two_step_ref.region().cells() {
        assert_eq!(
            balanced[c], two_step_ref[c],
            "cost-balanced divQ differs at {c:?}"
        );
    }
}
