//! Multi-tenant radiation-server battery (`uintah-serve`):
//!
//! * concurrent identical tenants produce bit-identical divQ to a
//!   standalone `run_world`, and the sharing counters prove warm slots /
//!   shared compiled graphs actually carried some of the load;
//! * a mixed-configuration stream never cross-contaminates — every job
//!   gets exactly the answer its own config produces solo, even when two
//!   configs share an executor slot;
//! * every summary line is keyed by `[job-<id>/r<rank>]` so interleaved
//!   multi-tenant logs stay attributable;
//! * admission control queues jobs that exceed the current headroom and
//!   rejects jobs larger than the whole fleet with a typed error;
//! * the high-priority tier overtakes the normal queue;
//! * the wire protocol preserves `f64` bits end to end, and a client
//!   disconnect cancels the jobs it submitted and abandoned.

use std::sync::Arc;
use std::time::{Duration, Instant};
use uintah::config::{JobPriority, RunConfig};
use uintah::prelude::*;
use uintah_grid::CcVariable;
use uintah_serve::{
    serve_on, JobOutcome, RadiationServer, ServeClient, ServeConfig, SubmitError,
};

/// The reference answer: what a standalone single-tenant run of exactly
/// this config computes for the fine-level divQ.
fn solo_divq(cfg: &RunConfig) -> Vec<f64> {
    let (grid, decls) = cfg.build_problem();
    let result = run_world(Arc::clone(&grid), decls, cfg.world_config());
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ missing");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out.into_vec()
}

fn assert_bits_equal(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: field size");
    for (i, (a, b)) in got.iter().zip(want).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{what}: cell {i} differs");
    }
}

/// A small two-level problem every test here can afford to run repeatedly.
fn small_cfg() -> RunConfig {
    RunConfig {
        fine_cells: 16,
        patch_size: 4,
        levels: 2,
        nrays: 8,
        halo: 2,
        ranks: 2,
        threads: 2,
        timesteps: 2,
        ..RunConfig::default()
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// N concurrent identical tenants == N solo runs, bit for bit — and the
/// server shared state across them (a recycled slot and/or compiled
/// graphs adopted from the shared cache) rather than rebuilding
/// everything per tenant.
#[test]
fn concurrent_identical_jobs_bit_identical_to_solo_run() {
    let cfg = small_cfg();
    let baseline = solo_divq(&cfg);
    let server = RadiationServer::start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });

    // Warm-up tenant: builds the first slot and seeds the graph cache.
    let warm = server.submit(cfg.clone()).unwrap();
    let outcome = warm.wait();
    let warm_report = outcome.expect_done();
    assert_bits_equal(&warm_report.divq.data, &baseline, "warm-up job");
    assert!(!warm_report.stats.slot_reused, "first tenant is cold");
    assert!(warm_report.stats.graph_compiles > 0, "first tenant compiles");

    // Three identical tenants in flight at once.
    let handles: Vec<_> = (0..3).map(|_| server.submit(cfg.clone()).unwrap()).collect();
    for h in &handles {
        let outcome = h.wait();
        let report = outcome.expect_done();
        assert_eq!(report.stats.steps, cfg.timesteps as u64);
        assert_bits_equal(
            &report.divq.data,
            &baseline,
            &format!("job {}", h.id()),
        );
    }

    let stats = server.stats();
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.canceled, 0);
    // Sharing must have carried load: the warm-up's idle slot is always
    // recycled by the first admitted tenant, and any tenant that built a
    // fresh slot instead must have adopted both ranks' compiled graphs
    // from the shared cache.
    assert!(stats.slot_hits >= 1, "warm slot never recycled: {stats:?}");
    assert!(
        stats.slot_hits + stats.shared_graph_hits >= 3,
        "three tenants shared almost nothing: {stats:?}"
    );
    assert!(
        stats.graph_cache.insertions >= 2,
        "both ranks' graphs should be published: {:?}",
        stats.graph_cache
    );

    server.drain();
    server.shutdown();
    assert_eq!(server.fleet().total_used(), 0);
}

/// A mixed stream of configurations — including two that share an
/// executor slot shape but differ in ray count and threshold — never
/// cross-contaminates: every report matches its own config's solo answer.
#[test]
fn mixed_config_stream_never_cross_contaminates() {
    let a = small_cfg();
    let b = RunConfig {
        nrays: 21,
        threshold: 0.01,
        timesteps: 1,
        ..small_cfg()
    };
    let c = RunConfig {
        fine_cells: 8,
        patch_size: 4,
        levels: 1,
        ranks: 1,
        threads: 1,
        nrays: 5,
        halo: 2,
        timesteps: 3,
        ..RunConfig::default()
    };
    // a and b hash to the same slot shape (only per-job parameters
    // differ); c is a different world entirely.
    let solo_a = solo_divq(&a);
    let solo_b = solo_divq(&b);
    let solo_c = solo_divq(&c);

    let server = RadiationServer::start(ServeConfig {
        workers: 3,
        ..ServeConfig::default()
    });
    let stream = [
        ("a", &a, &solo_a),
        ("b", &b, &solo_b),
        ("c", &c, &solo_c),
        ("b again", &b, &solo_b),
        ("a again", &a, &solo_a),
    ];
    let handles: Vec<_> = stream
        .iter()
        .map(|(name, cfg, want)| (name, server.submit((*cfg).clone()).unwrap(), want))
        .collect();
    for (name, handle, want) in &handles {
        let outcome = handle.wait();
        let report = outcome.expect_done();
        assert_bits_equal(&report.divq.data, want, name);
    }
    let stats = server.stats();
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.failed, 0);
    server.drain();
    server.shutdown();
}

/// Interleaved multi-tenant logs stay attributable: every line of every
/// summary is prefixed with its own job's `[job-<id>/r<rank>]` key, both
/// ranks report, and no line carries another job's key.
#[test]
fn summary_lines_are_keyed_by_job_and_rank() {
    let server = RadiationServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let first = server.submit(small_cfg()).unwrap();
    let second = server
        .submit(RunConfig {
            nrays: 13,
            ..small_cfg()
        })
        .unwrap();
    let outcomes = [first.wait(), second.wait()];
    let reports: Vec<_> = outcomes.iter().map(|o| o.expect_done()).collect();
    for report in &reports {
        // One summary per (rank, step): 2 ranks x 2 timesteps.
        assert_eq!(report.summaries.len(), 4, "job {}", report.job_id);
        let own = format!("[{}/r", report.run_id);
        let mut per_rank = [0usize; 2];
        for summary in &report.summaries {
            for line in summary.lines() {
                assert!(
                    line.starts_with(&own),
                    "job {} summary line lacks its key: {line:?}",
                    report.job_id
                );
                for (rank, count) in per_rank.iter_mut().enumerate() {
                    if line.starts_with(&format!("[{}/r{rank}] ", report.run_id)) {
                        *count += 1;
                    }
                }
            }
        }
        assert!(
            per_rank.iter().all(|&n| n > 0),
            "job {}: some rank never reported: {per_rank:?}",
            report.job_id
        );
    }
    // The prefix check above is per-job exhaustive, so keys can never have
    // crossed; make the corruption check explicit anyway.
    let other = format!("[{}/", reports[1].run_id);
    assert!(
        reports[0].summaries.iter().all(|s| !s.contains(&other)),
        "job {} summaries leaked into job {}",
        reports[1].job_id,
        reports[0].job_id
    );

    server.drain();
    server.shutdown();
}

/// Admission control: a GPU tenant that fits the fleet but not the
/// current headroom queues (counted in `queued_for_capacity`) instead of
/// OOM-ing, and runs once capacity frees; a job larger than the whole
/// fleet is rejected with [`SubmitError::TooLarge`], not a panic. After
/// drain + shutdown the shared device meters read exactly zero.
#[test]
fn admission_queues_oversubscribed_jobs_and_rejects_impossible_ones() {
    // One simulated 3 MiB device: the 16^3 two-level GPU problem below
    // needs ~2 MiB, so one tenant fits and two concurrent tenants do not.
    let server = RadiationServer::start(ServeConfig {
        workers: 2,
        gpus: 1,
        gpu_capacity_mb: 3,
        ..ServeConfig::default()
    });
    let gcfg = RunConfig {
        fine_cells: 16,
        patch_size: 4,
        levels: 2,
        ranks: 1,
        threads: 1,
        nrays: 4,
        gpu: true,
        // Effectively forever; canceled below once the test has observed
        // what it needs. Keeps the capacity pinned deterministically.
        timesteps: 100_000,
        ..RunConfig::default()
    };
    let blocker = server.submit(gcfg.clone()).unwrap();
    wait_until("blocker running", || server.stats().active_jobs == 1);

    let queued = server
        .submit(RunConfig {
            timesteps: 1,
            ..gcfg.clone()
        })
        .unwrap();
    wait_until("second tenant deferred for capacity", || {
        server.stats().queued_for_capacity >= 1
    });
    let stats = server.stats();
    assert_eq!(stats.active_jobs, 1, "second tenant must queue, not run");
    assert_eq!(stats.queued_jobs, 1);
    assert_eq!(stats.failed, 0, "oversubscription must never OOM a job");

    // Larger than the entire fleet: refused up front, typed, no panic.
    let huge = RunConfig {
        fine_cells: 32,
        patch_size: 8,
        timesteps: 1,
        ..gcfg.clone()
    };
    match server.submit(huge) {
        Err(SubmitError::TooLarge {
            footprint,
            capacity,
        }) => assert!(footprint > capacity),
        Err(e) => panic!("expected TooLarge, got {e}"),
        Ok(_) => panic!("a job larger than the fleet was admitted"),
    }

    // Freeing the blocker's reservation lets the queued tenant run.
    blocker.cancel();
    assert!(matches!(blocker.wait(), JobOutcome::Canceled));
    let outcome = queued.wait();
    let report = outcome.expect_done();
    assert_eq!(report.stats.steps, 1);

    let stats = server.stats();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.canceled, 1);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.failed, 0);
    assert!(stats.queued_for_capacity >= 1);

    server.drain();
    server.shutdown();
    assert_eq!(server.fleet().total_used(), 0, "device meters must drain to zero");
    for (d, c) in server.fleet().counters_per_device().iter().enumerate() {
        assert_eq!(c.release_underflows, 0, "device {d} meter drift");
    }
    for d in server.fleet().devices() {
        d.validate_allocator().expect("allocator invariants clean");
    }
}

/// Warm-slot reuse with the async upload pipeline on (the default): a
/// second same-shape GPU tenant recycles the first tenant's slot, still
/// inherits its device-resident level replicas (posted cross-step
/// prefetches must not break the inheritance accounting), and its divQ
/// stays bit-identical both to a solo run and to the synchronous-upload
/// fallback. After drain + shutdown the shared fleet reads exactly zero.
#[test]
fn warm_slot_with_h2d_prefetch_inherits_replicas_bit_identical() {
    let gcfg = RunConfig {
        fine_cells: 16,
        patch_size: 4,
        levels: 2,
        ranks: 1,
        threads: 2,
        nrays: 4,
        halo: 2,
        gpu: true,
        timesteps: 2,
        ..RunConfig::default()
    };
    assert!(gcfg.gpu_async_h2d, "async uploads are the default");
    let baseline = solo_divq(&gcfg);

    let server = RadiationServer::start(ServeConfig {
        workers: 1,
        gpus: 1,
        ..ServeConfig::default()
    });
    let cold_outcome = server.submit(gcfg.clone()).unwrap().wait();
    let cold = cold_outcome.expect_done();
    assert!(!cold.stats.slot_reused, "first tenant is cold");
    assert_bits_equal(&cold.divq.data, &baseline, "cold tenant");

    // The warm tenant lands on the same slot and inherits the level
    // replicas the cold tenant left device-resident — end-of-job hygiene
    // drains the upload engine but keeps the replicas (and any posted
    // level prefetches, which the warm tenant verifies before serving).
    let warm_outcome = server.submit(gcfg.clone()).unwrap().wait();
    let warm = warm_outcome.expect_done();
    assert!(warm.stats.slot_reused, "same shape must recycle the slot");
    assert!(
        warm.stats.level_replicas_inherited > 0,
        "prefetch must not break replica inheritance: {:?}",
        warm.stats.level_replicas_inherited
    );
    assert_bits_equal(&warm.divq.data, &baseline, "warm tenant");
    server.drain();
    server.shutdown();
    assert_eq!(server.fleet().total_used(), 0, "fleet must drain to zero");

    // The synchronous fallback serves the same bits, warm or cold.
    let sync_cfg = RunConfig {
        gpu_async_h2d: false,
        ..gcfg
    };
    assert_bits_equal(&solo_divq(&sync_cfg), &baseline, "sync fallback solo");
    let server = RadiationServer::start(ServeConfig {
        workers: 1,
        gpus: 1,
        ..ServeConfig::default()
    });
    let a_outcome = server.submit(sync_cfg.clone()).unwrap().wait();
    let a = a_outcome.expect_done();
    let b_outcome = server.submit(sync_cfg).unwrap().wait();
    let b = b_outcome.expect_done();
    assert_bits_equal(&a.divq.data, &baseline, "sync fallback cold tenant");
    assert_bits_equal(&b.divq.data, &baseline, "sync fallback warm tenant");
    assert!(b.stats.slot_reused);
    server.drain();
    server.shutdown();
    assert_eq!(server.fleet().total_used(), 0);
}

/// The high tier drains before the normal tier: with one worker pinned by
/// a long job, a high-priority job submitted *after* a normal one starts
/// (and therefore stops queueing) first.
#[test]
fn high_priority_jobs_overtake_the_normal_queue() {
    let server = RadiationServer::start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let long = RunConfig {
        ranks: 1,
        threads: 1,
        nrays: 1,
        timesteps: 100_000,
        ..small_cfg()
    };
    let blocker = server.submit(long).unwrap();
    wait_until("blocker running", || server.stats().active_jobs == 1);

    let quick = RunConfig {
        ranks: 1,
        threads: 1,
        nrays: 4,
        timesteps: 1,
        ..small_cfg()
    };
    let normal = server.submit(quick.clone()).unwrap();
    let high = server
        .submit(RunConfig {
            priority: JobPriority::High,
            ..quick
        })
        .unwrap();
    wait_until("both tenants queued", || server.stats().queued_jobs == 2);
    blocker.cancel();

    let high_outcome = high.wait();
    let normal_outcome = normal.wait();
    let (h, n) = (high_outcome.expect_done(), normal_outcome.expect_done());
    // The normal job was submitted first, so if it also *ran* first its
    // queue time would be the shorter one. High running first means the
    // later-submitted job spent strictly less time queued.
    assert!(
        n.stats.queued_ns > h.stats.queued_ns,
        "high tier did not overtake: normal queued {} ns, high queued {} ns",
        n.stats.queued_ns,
        h.stats.queued_ns
    );
    server.drain();
    server.shutdown();
}

/// The full wire path: a job submitted over the socket returns divQ
/// bit-identical to a solo run (f64 bits survive the protocol), a bad
/// config is rejected with a typed code, and a client that disconnects
/// with a job still unfinished cancels it rather than pinning capacity.
#[test]
fn wire_roundtrip_preserves_bits_and_disconnect_cancels_owned_jobs() {
    let cfg_text = "fine_cells = 16\npatch_size = 4\nlevels = 2\nranks = 2\n\
                    threads = 2\nnrays = 8\nhalo = 2\ntimesteps = 2\n";
    let cfg = RunConfig::parse(cfg_text).unwrap();
    let baseline = solo_divq(&cfg);

    let server = Arc::new(RadiationServer::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }));
    let path = std::env::temp_dir().join(format!(
        "rmcrt-serve-test-{}.sock",
        std::process::id()
    ));
    let socket = serve_on(Arc::clone(&server), &path).unwrap();

    let mut client = ServeClient::connect(&path).unwrap();
    let id = client.submit(cfg_text).unwrap();
    let outcome = client.wait(id).unwrap();
    let report = outcome.expect_done();
    assert_bits_equal(&report.divq.data, &baseline, "served over the wire");
    assert_eq!(report.run_id, format!("job-{id}"));
    let stats = client.stats().unwrap();
    assert_eq!(stats.completed, 1);

    // Typos come back as a typed rejection, not a dropped connection.
    assert!(
        client.submit("nrayz = 8").is_err(),
        "unknown key must be rejected over the wire"
    );
    drop(client);

    // A disconnecting client abandons its unfinished jobs: the server
    // cancels them so they cannot pin capacity forever.
    let mut walker = ServeClient::connect(&path).unwrap();
    let long_id = walker
        .submit(
            "fine_cells = 16\npatch_size = 4\nlevels = 2\nranks = 1\n\
             threads = 1\nnrays = 1\nhalo = 2\ntimesteps = 100000\n",
        )
        .unwrap();
    drop(walker);
    wait_until("disconnect cancels the abandoned job", || {
        server.stats().canceled >= 1
    });
    assert!(matches!(
        server.job(long_id).expect("job still known").wait(),
        JobOutcome::Canceled
    ));

    socket.close();
    server.drain();
    server.shutdown();
    assert_eq!(server.fleet().total_used(), 0);
    assert!(!path.exists(), "socket file must be removed on close");
}
