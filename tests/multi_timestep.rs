//! Multi-timestep persistence tests (the persistent-executor PR):
//!
//! * a cached task graph re-stamped with per-step phase bytes must produce
//!   bit-identical results to recompiling the graph every step;
//! * values from timestep N−1 must never satisfy a timestep-N get, even
//!   though their storage is recycled rather than freed;
//! * GPU level replicas persist across steps, so steps 2+ move strictly
//!   fewer bytes over PCIe than the cold first step.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use uintah::prelude::*;
use uintah::runtime::task::{Computes, Requirement, TaskContext};
use uintah::runtime::TaskDecl;
use uintah_grid::CcVariable;

/// Gather the fine-level divQ field from a world result.
fn collect_divq(grid: &Grid, result: &uintah::runtime::WorldResult) -> CcVariable<f64> {
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ missing");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out
}

fn pipeline() -> RmcrtPipeline {
    RmcrtPipeline {
        params: RmcrtParams {
            nrays: 8,
            threshold: 1e-4,
            seed: 0x5EED,
            timestep: 0,
            sampling: uintah::rmcrt::sampling::RaySampling::Independent,
            ray_count: None,
        },
        halo: 2,
        problem: BurnsChriston::default(),
    }
}

/// (a) Cached-graph execution is bit-identical to per-step recompilation.
///
/// Runs the full multilevel RMCRT pipeline for several timesteps twice:
/// once through the persistent executor (graph compiled once, phase byte
/// re-stamped at message-post time) and once through the rebuild-everything
/// baseline (fresh graph, cold warehouses every step). The final divQ must
/// match bit for bit, and the stats must show the graph was compiled
/// exactly once on the persistent path.
#[test]
fn cached_graph_matches_per_step_recompilation() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let decls = Arc::new(multilevel_decls(&grid, p, false));
    let timesteps = 3;
    let run = |persistent: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 2,
                nthreads: 2,
                timesteps,
                persistent,
                ..Default::default()
            },
        )
    };
    let cached = run(true);
    let rebuilt = run(false);

    let a = collect_divq(&grid, &cached);
    let b = collect_divq(&grid, &rebuilt);
    for c in a.region().cells() {
        assert_eq!(a[c].to_bits(), b[c].to_bits(), "cell {c:?}");
    }

    for rr in &cached.ranks {
        assert!(
            rr.stats[0].graph_compile.as_nanos() > 0,
            "rank {}: first step must pay graph compilation",
            rr.rank
        );
        for (ts, s) in rr.stats.iter().enumerate().skip(1) {
            assert_eq!(
                s.graph_compile.as_nanos(),
                0,
                "rank {}: step {ts} recompiled a graph that should be cached",
                rr.rank
            );
        }
    }
    for rr in &rebuilt.ranks {
        for (ts, s) in rr.stats.iter().enumerate() {
            assert!(
                s.graph_compile.as_nanos() > 0,
                "rank {}: rebuild baseline must compile at step {ts}",
                rr.rank
            );
        }
    }
}

/// (b) Storage recycling never lets a stale value satisfy a current get.
///
/// The producer stamps every cell with the current step index (derived
/// from a shared execution counter); the consumer sums the 7-point
/// stencil. If an epoch check ever let step N−1's SRC satisfy a step-N
/// get, the consumer would read a stale stamp and the final field would
/// be wrong. Recycler hit counts prove the storage really was reused
/// rather than freshly allocated.
#[test]
fn stale_epochs_never_leak_across_timesteps() {
    const SRC: VarLabel = VarLabel::new("mt_src", 40);
    const OUT: VarLabel = VarLabel::new("mt_out", 41);
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(8))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(4))
            .build(),
    );
    let npatches = grid.num_patches();
    let execs = Arc::new(AtomicUsize::new(0));
    let execs_in_task = Arc::clone(&execs);
    let produce = TaskDecl::new(
        "stamp",
        0,
        Arc::new(move |ctx: &mut TaskContext| {
            // All patches of step N run before any patch of step N+1
            // (execute is a barrier), so id / npatches is the step index.
            let step = execs_in_task.fetch_add(1, Ordering::SeqCst) / npatches;
            let mut v = ctx.alloc_f64(ctx.patch().interior());
            v.fill_with(|_| step as f64);
            ctx.put(SRC, FieldData::F64(v));
        }),
    )
    .computes(Computes::PatchVar(SRC));
    let consume = TaskDecl::new(
        "stencil",
        0,
        Arc::new(|ctx: &mut TaskContext| {
            let src = ctx.get_ghosted_f64(SRC, 1);
            let region = ctx.patch().interior();
            let mut out = ctx.alloc_f64(region);
            for c in region.cells() {
                let mut sum = src[c];
                for d in [
                    IntVector::new(1, 0, 0),
                    IntVector::new(-1, 0, 0),
                    IntVector::new(0, 1, 0),
                    IntVector::new(0, -1, 0),
                    IntVector::new(0, 0, 1),
                    IntVector::new(0, 0, -1),
                ] {
                    if let Some(&v) = src.get(c + d) {
                        sum += v;
                    }
                }
                out[c] = sum;
            }
            ctx.put(OUT, FieldData::F64(out));
        }),
    )
    .requires(Requirement::Ghost(SRC, 1))
    .computes(Computes::PatchVar(OUT));

    let timesteps = 4;
    let result = run_world(
        Arc::clone(&grid),
        Arc::new(vec![produce, consume]),
        WorldConfig {
            nranks: 1,
            nthreads: 2,
            timesteps,
            ..Default::default()
        },
    );
    let rr = &result.ranks[0];
    assert_eq!(rr.dw.epoch(), (timesteps - 1) as u64, "one epoch per step");
    assert_eq!(execs.load(Ordering::SeqCst), npatches * timesteps);

    // Every surviving value must carry the final step's stamp; a stale
    // epoch leak would surface an earlier stamp (or a wrong stencil sum).
    let last = (timesteps - 1) as f64;
    let domain = Region::cube(8);
    for &pid in result.dist.owned_by(0) {
        let patch = grid.patch(pid);
        let src = rr.dw.get_patch(SRC, pid).expect("src present");
        let out = rr.dw.get_patch(OUT, pid).expect("out present");
        for c in patch.interior().cells() {
            assert_eq!(src.as_f64()[c], last, "stale SRC at {c:?}");
            let mut neighbours = 1;
            for d in [
                IntVector::new(1, 0, 0),
                IntVector::new(-1, 0, 0),
                IntVector::new(0, 1, 0),
                IntVector::new(0, -1, 0),
                IntVector::new(0, 0, 1),
                IntVector::new(0, 0, -1),
            ] {
                if domain.contains(c + d) {
                    neighbours += 1;
                }
            }
            assert_eq!(out.as_f64()[c], last * neighbours as f64, "stale OUT at {c:?}");
        }
    }

    // The warehouse must have recycled retired storage: steps 2+ allocate
    // from the bins filled by the previous step's retirement.
    assert!(
        rr.dw.recycle_hits() > 0,
        "no buffers recycled across {timesteps} timesteps"
    );
}

/// (c) Persistent GPU level replicas: steps 2+ re-upload strictly less
/// than the cold first step, and the results stay identical to CPU.
#[test]
fn gpu_level_db_reuploads_less_after_first_step() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let timesteps = 3;
    let run = |gpu: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::new(multilevel_decls(&grid, p, gpu)),
            WorldConfig {
                nranks: 1,
                nthreads: 2,
                timesteps,
                gpu_capacity: gpu.then_some(2 << 30),
                ..Default::default()
            },
        )
    };
    let gpu_run = run(true);
    let cpu_run = run(false);

    let rr = &gpu_run.ranks[0];
    let first = rr.stats[0].gpu_h2d_bytes;
    assert!(first > 0, "cold step must upload");
    for (ts, s) in rr.stats.iter().enumerate().skip(1) {
        assert!(
            s.gpu_h2d_bytes < first,
            "step {ts} uploaded {} B, not less than cold step's {first} B — \
             level replicas were not kept device-resident",
            s.gpu_h2d_bytes
        );
    }

    // Residency must not change the answer: GPU multi-step == CPU multi-step.
    let a = collect_divq(&grid, &gpu_run);
    let b = collect_divq(&grid, &cpu_run);
    for c in a.region().cells() {
        assert_eq!(a[c].to_bits(), b[c].to_bits(), "cell {c:?}");
    }
}

/// (d) Async D2H pipelining changes timing only, never results: `divQ`
/// stays bit-identical to the synchronous-drain baseline on one worker
/// (serial) and on 2, 3 and 7 workers driving the Device path, across 3
/// timesteps — and the stats prove the copy engine actually moved the
/// bytes and hid drain time behind compute.
#[test]
fn async_d2h_divq_bit_identical_to_sync_across_thread_counts() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let p = pipeline();
    let timesteps = 3;
    let decls = Arc::new(multilevel_decls(&grid, p, true));
    let run = |nthreads: usize, async_d2h: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 1,
                nthreads,
                timesteps,
                gpu_capacity: Some(2 << 30),
                gpu_async_d2h: async_d2h,
                ..Default::default()
            },
        )
    };
    let reference = collect_divq(&grid, &run(1, false));
    for nthreads in [1, 2, 3, 7] {
        let async_run = run(nthreads, true);
        let sync_run = run(nthreads, false);
        let a = collect_divq(&grid, &async_run);
        let s = collect_divq(&grid, &sync_run);
        for c in reference.region().cells() {
            assert_eq!(
                a[c].to_bits(),
                reference[c].to_bits(),
                "async divQ differs at {c:?} with {nthreads} threads"
            );
            assert_eq!(
                s[c].to_bits(),
                reference[c].to_bits(),
                "sync divQ differs at {c:?} with {nthreads} threads"
            );
        }

        // Metering: the same bytes cross PCIe either way; only the async
        // path reports drain time hidden behind compute, and the sync
        // path reports exactly zero overlap by construction.
        let a_stats = &async_run.ranks[0].stats;
        let s_stats = &sync_run.ranks[0].stats;
        let a_bytes: u64 = a_stats.iter().map(|st| st.gpu_d2h_bytes).sum();
        let s_bytes: u64 = s_stats.iter().map(|st| st.gpu_d2h_bytes).sum();
        assert!(a_bytes > 0, "async run must report D2H traffic");
        assert_eq!(a_bytes, s_bytes, "async and sync must move identical bytes");
        let a_overlap: Duration = a_stats.iter().map(|st| st.gpu_d2h_overlap).sum();
        let s_overlap: Duration = s_stats.iter().map(|st| st.gpu_d2h_overlap).sum();
        assert!(
            a_overlap > Duration::ZERO,
            "async run with {nthreads} threads hid no drain time"
        );
        assert_eq!(
            s_overlap,
            Duration::ZERO,
            "sync baseline must report zero overlap"
        );
    }
}
