//! Physics validation: Monte Carlo convergence, DOM cross-validation,
//! symmetry and limit behaviour on the Burns & Christon benchmark.

use uintah::prelude::*;

fn bc_props(n: i32) -> LevelProps {
    let grid = BurnsChriston::small_grid(n, (n / 2).min(16));
    BurnsChriston::default().props_for_level(grid.fine_level())
}

fn stack(props: &LevelProps) -> [TraceLevel<'_>; 1] {
    [TraceLevel {
        props,
        roi: props.region,
    }]
}

/// Expected Monte Carlo convergence: RMS error vs a high-N reference falls
/// like 1/√N (the paper's accuracy claim for the benchmark, citing [3]).
#[test]
fn monte_carlo_convergence_is_sqrt_n() {
    let n = 8;
    let props = bc_props(n);
    let st = stack(&props);
    let sample: Vec<IntVector> = Region::cube(n)
        .cells()
        .filter(|c| (c.x + c.y + c.z) % 3 == 0)
        .collect();
    let solve = |nrays: u32, seed: u64| -> Vec<f64> {
        sample
            .iter()
            .map(|&c| {
                div_q_for_cell(
                    &st,
                    c,
                    &RmcrtParams {
                        nrays,
                        threshold: 1e-5,
                        seed,
                        timestep: 0,
                        sampling: Default::default(),
                        ray_count: None,
                    },
                )
            })
            .collect()
    };
    let reference = solve(8192, 7);
    let rms = |nrays: u32| -> f64 {
        let got = solve(nrays, 1234);
        let se: f64 = got
            .iter()
            .zip(&reference)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        (se / got.len() as f64).sqrt()
    };
    let e16 = rms(16);
    let e64 = rms(64);
    let e256 = rms(256);
    // Each 4x in rays should halve the error (ratio 2, allow 1.5–3.2).
    let r1 = e16 / e64;
    let r2 = e64 / e256;
    assert!(e16 > e64 && e64 > e256, "errors must decrease: {e16} {e64} {e256}");
    assert!((1.4..3.4).contains(&r1), "ratio 16→64 rays: {r1}");
    assert!((1.4..3.4).contains(&r2), "ratio 64→256 rays: {r2}");
}

/// DOM (S8) and RMCRT centreline profiles agree on the benchmark within
/// Monte Carlo + angular-discretization error.
#[test]
fn dom_and_rmcrt_centerline_profiles_agree() {
    use uintah::rmcrt::dom::{solve as dom_solve, SnOrder};
    let n = 16;
    let props = bc_props(n);
    let dom = dom_solve(&props, SnOrder::S8);
    let st = stack(&props);
    let params = RmcrtParams {
        nrays: 1024,
        threshold: 1e-5,
        ..Default::default()
    };
    let mid = n / 2;
    let mut max_rel: f64 = 0.0;
    for x in 1..(n - 1) {
        let c = IntVector::new(x, mid, mid);
        let mc = div_q_for_cell(&st, c, &params);
        let d = dom.div_q[c];
        let rel = (mc - d).abs() / d.abs().max(1e-3);
        max_rel = max_rel.max(rel);
    }
    assert!(max_rel < 0.12, "max centreline deviation {max_rel}");
}

/// The benchmark's κ is symmetric under coordinate permutation; with a
/// symmetric (high-N) solve the divQ profile along x and y must match.
#[test]
fn div_q_inherits_problem_symmetry() {
    let n = 12;
    let props = bc_props(n);
    let st = stack(&props);
    let params = RmcrtParams {
        nrays: 2048,
        threshold: 1e-5,
        ..Default::default()
    };
    let mid = n / 2;
    for k in 1..(n / 2) {
        let cx = div_q_for_cell(&st, IntVector::new(k, mid, mid), &params);
        let cy = div_q_for_cell(&st, IntVector::new(mid, k, mid), &params);
        let rel = (cx - cy).abs() / cx.abs().max(1e-6);
        assert!(rel < 0.1, "x/y asymmetry at k={k}: {cx} vs {cy}");
    }
}

/// divQ magnitude peaks at the centre (where κ peaks) and decays toward
/// the corners — the Burns & Christon published shape.
#[test]
fn div_q_peaks_at_center() {
    let n = 12;
    let props = bc_props(n);
    let st = stack(&props);
    let params = RmcrtParams {
        nrays: 1024,
        threshold: 1e-5,
        ..Default::default()
    };
    let mid = n / 2;
    let center = div_q_for_cell(&st, IntVector::splat(mid), &params);
    let edge = div_q_for_cell(&st, IntVector::new(1, mid, mid), &params);
    let corner = div_q_for_cell(&st, IntVector::new(1, 1, 1), &params);
    assert!(center > edge, "centre {center} vs edge {edge}");
    assert!(edge > corner, "edge {edge} vs corner {corner}");
    assert!(center > 0.0 && corner > 0.0, "hot medium emits everywhere");
}

/// Multi-level vs single-level divQ through the *distributed runtime* on a
/// larger grid: agreement within Monte Carlo + coarsening error.
#[test]
fn runtime_multilevel_close_to_single_level() {
    use std::sync::Arc;
    let grid = Arc::new(BurnsChriston::small_grid(16, 8));
    let p = RmcrtPipeline {
        params: RmcrtParams {
            nrays: 128,
            threshold: 1e-4,
            ..Default::default()
        },
        halo: 4,
        problem: BurnsChriston::default(),
    };
    let cfg = WorldConfig {
        nranks: 2,
        nthreads: 2,
        ..Default::default()
    };
    let collect = |result: &uintah::runtime::WorldResult| -> CcVariable<f64> {
        let fine = grid.fine_level();
        let mut out = CcVariable::<f64>::new(fine.cell_region());
        for rr in &result.ranks {
            for &pid in result.dist.owned_by(rr.rank) {
                if grid.patch(pid).level_index() == grid.fine_level_index() {
                    let v = rr.dw.get_patch(DIVQ, pid).unwrap();
                    out.copy_window(v.as_f64(), &grid.patch(pid).interior());
                }
            }
        }
        out
    };
    let ml = collect(&run_world(
        Arc::clone(&grid),
        Arc::new(multilevel_decls(&grid, p, false)),
        cfg.clone(),
    ));
    let sl = collect(&run_world(
        Arc::clone(&grid),
        Arc::new(single_level_decls(&grid, p, false)),
        cfg,
    ));
    let mean: f64 = sl.as_slice().iter().map(|v| v.abs()).sum::<f64>() / sl.len() as f64;
    let mut max_rel: f64 = 0.0;
    for c in sl.region().cells() {
        max_rel = max_rel.max((ml[c] - sl[c]).abs() / mean);
    }
    assert!(max_rel < 0.4, "multi-level vs single-level deviation {max_rel}");
}

/// The boundary-flux map and the virtual radiometer are two routes to the
/// same physical quantity: a hemispherical radiometer in the wall must
/// read (within MC error) what the flux machinery computes for that face.
#[test]
fn wall_flux_map_agrees_with_radiometer() {
    use uintah::rmcrt::flux::{face_incident_flux, Face, FluxParams};
    use uintah::rmcrt::radiometer::Radiometer;
    let n = 12;
    let grid = BurnsChriston::small_grid(n, 4.min(n / 2));
    let props = BurnsChriston::default().props_for_level(grid.fine_level());
    let stack = [TraceLevel {
        props: &props,
        roi: props.region,
    }];
    let mid = n / 2;
    let q_flux = face_incident_flux(
        &stack,
        IntVector::new(0, mid, mid),
        Face::XMinus,
        &FluxParams {
            nrays: 4000,
            threshold: 1e-5,
            ..Default::default()
        },
    );
    let q_radiometer = Radiometer {
        position: Point::new(1e-5, (mid as f64 + 0.5) / n as f64, (mid as f64 + 0.5) / n as f64),
        normal: Vector::new(1.0, 0.0, 0.0),
        half_angle: std::f64::consts::FRAC_PI_2,
        nrays: 4000,
        seed: 77,
    }
    .measure(&stack, 1e-5);
    let rel = (q_flux - q_radiometer).abs() / q_flux.max(1e-12);
    assert!(
        rel < 0.06,
        "flux map {q_flux} vs radiometer {q_radiometer} (rel {rel})"
    );
}

/// Optically thin limit: divQ → 4πκ·σT⁴/π (all emission escapes).
#[test]
fn optically_thin_limit() {
    let n = 8;
    let kappa = 1e-4;
    let s = 0.5;
    let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, s);
    let st = stack(&props);
    let dq = div_q_for_cell(
        &st,
        IntVector::splat(n / 2),
        &RmcrtParams {
            nrays: 64,
            threshold: 1e-7,
            ..Default::default()
        },
    );
    let expect = 4.0 * std::f64::consts::PI * kappa * s;
    assert!(
        (dq - expect).abs() / expect < 0.02,
        "thin limit: {dq} vs {expect}"
    );
}

/// Optically thick interior: divQ → 0 (local equilibrium with neighbours).
#[test]
fn optically_thick_interior_is_in_equilibrium() {
    let n = 8;
    let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1e4, 0.5);
    let st = stack(&props);
    let dq = div_q_for_cell(
        &st,
        IntVector::splat(n / 2),
        &RmcrtParams {
            nrays: 64,
            threshold: 1e-9,
            ..Default::default()
        },
    );
    let emission = 4.0 * std::f64::consts::PI * 1e4 * 0.5;
    assert!(dq.abs() / emission < 1e-4, "thick interior divQ {dq}");
}
