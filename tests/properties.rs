//! Property-based tests (proptest) for the core data structures and
//! invariants of the stack.

use proptest::prelude::*;
use uintah::prelude::*;
use uintah_grid::distribute::morton3;

fn small_coord() -> impl Strategy<Value = i32> {
    -20..20i32
}

proptest! {
    /// Region coarsen/refine: the coarse parent of every fine cell lies in
    /// the coarsened region, and refining covers the original.
    #[test]
    fn region_coarsen_covers(
        lox in small_coord(), loy in small_coord(), loz in small_coord(),
        ex in 1..12i32, ey in 1..12i32, ez in 1..12i32,
        rr in 2..5i32,
    ) {
        let lo = IntVector::new(lox, loy, loz);
        let region = Region::new(lo, lo + IntVector::new(ex, ey, ez));
        let rrv = IntVector::splat(rr);
        let coarse = region.coarsened(rrv);
        for c in region.cells() {
            prop_assert!(coarse.contains(c.div_floor(rrv)));
        }
        prop_assert!(coarse.refined(rrv).contains_region(&region));
    }

    /// Linear indexing is a bijection on any region.
    #[test]
    fn region_linear_index_bijective(
        lox in small_coord(), loy in small_coord(), loz in small_coord(),
        ex in 1..8i32, ey in 1..8i32, ez in 1..8i32,
    ) {
        let lo = IntVector::new(lox, loy, loz);
        let region = Region::new(lo, lo + IntVector::new(ex, ey, ez));
        for (i, c) in region.cells().enumerate() {
            prop_assert_eq!(region.linear_index(c), i);
            prop_assert_eq!(region.from_linear(i), c);
        }
    }

    /// Intersection is commutative, contained in both, and grown() is
    /// monotone.
    #[test]
    fn region_algebra(
        a in 0..10i32, b in 1..10i32, c in 0..10i32, d in 1..10i32,
        g in 0..4i32,
    ) {
        let r1 = Region::new(IntVector::splat(a), IntVector::splat(a + b));
        let r2 = Region::new(IntVector::splat(c), IntVector::splat(c + d));
        let i12 = r1.intersect(&r2);
        let i21 = r2.intersect(&r1);
        prop_assert_eq!(i12, i21);
        prop_assert!(r1.contains_region(&i12) && r2.contains_region(&i12));
        prop_assert!(r1.grown(g).contains_region(&r1));
    }

    /// Morton keys are injective on the lattice domain.
    #[test]
    fn morton_injective(ax in 0..64i32, ay in 0..64i32, az in 0..64i32,
                        bx in 0..64i32, by in 0..64i32, bz in 0..64i32) {
        let a = IntVector::new(ax, ay, az);
        let b = IntVector::new(bx, by, bz);
        prop_assert_eq!(morton3(a) == morton3(b), a == b);
    }

    /// Window pack/unpack round-trips arbitrary windows of arbitrary data.
    #[test]
    fn pack_unpack_roundtrip(
        n in 2..8i32,
        wx in 0..4i32, wy in 0..4i32, wz in 0..4i32,
        ex in 1..4i32, ey in 1..4i32, ez in 1..4i32,
        seed in any::<u32>(),
    ) {
        let region = Region::cube(n);
        let mut v = CcVariable::<f64>::new(region);
        v.fill_with(|c| (c.x * 31 + c.y * 7 + c.z) as f64 + seed as f64);
        let wlo = IntVector::new(wx, wy, wz);
        let window = Region::new(wlo, wlo + IntVector::new(ex, ey, ez)).intersect(&region);
        prop_assume!(!window.is_empty());
        let (w, buf) = v.pack_window(&window);
        let mut out = CcVariable::<f64>::new(region);
        out.unpack_window(&w, &buf);
        for c in w.cells() {
            prop_assert_eq!(out[c], v[c]);
        }
    }

    /// Restriction conserves the integral for any field.
    #[test]
    fn restriction_conserves_integral(
        rr in 2..4i32,
        nc in 1..4i32,
        seed in any::<u64>(),
    ) {
        use uintah_grid::restriction::restrict_average;
        let fine_n = nc * rr;
        let fine_r = Region::cube(fine_n);
        let mut fine = CcVariable::<f64>::new(fine_r);
        let mut rng = CellRng::new(seed, IntVector::ZERO, 0, 0);
        fine.fill_with(|_| rng.next_f64());
        let coarse = restrict_average(&fine, IntVector::splat(rr), Region::cube(nc));
        let fine_sum: f64 = fine.as_slice().iter().sum();
        let coarse_sum: f64 = coarse.as_slice().iter().sum::<f64>() * (rr * rr * rr) as f64;
        prop_assert!((fine_sum - coarse_sum).abs() <= 1e-9 * fine_sum.abs().max(1.0));
    }

    /// DDA path length equals the geometric chord for any ray through a
    /// uniform medium (κ = 1, telescoped optical depth recovers length).
    #[test]
    fn dda_chord_property(
        ox in 0.01f64..0.99, oy in 0.01f64..0.99, oz in 0.01f64..0.99,
        dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
    ) {
        let d = Vector::new(dx, dy, dz);
        prop_assume!(d.length() > 1e-3);
        let dir = d.normalized();
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let origin = Point::new(ox, oy, oz);
        let sum_i = trace_ray(
            &[TraceLevel { props: &props, roi: props.region }],
            origin,
            dir,
            1e-300,
        );
        let l_measured = -(1.0 - sum_i).ln();
        let mut l_geom = f64::INFINITY;
        for a in 0..3 {
            if dir[a] > 0.0 {
                l_geom = l_geom.min((1.0 - origin[a]) / dir[a]);
            } else if dir[a] < 0.0 {
                l_geom = l_geom.min(-origin[a] / dir[a]);
            }
        }
        prop_assert!((l_measured - l_geom).abs() < 1e-8,
            "path {} vs chord {}", l_measured, l_geom);
    }

    /// divQ is always finite, and zero for transparent cells.
    #[test]
    fn div_q_finite(kappa in 0.0f64..50.0, s in 0.0f64..10.0, nrays in 1u32..32) {
        let n = 6;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, s);
        let dq = div_q_for_cell(
            &[TraceLevel { props: &props, roi: props.region }],
            IntVector::splat(n / 2),
            &RmcrtParams { nrays, threshold: 1e-4, seed: 1, timestep: 0, sampling: Default::default() },
        );
        prop_assert!(dq.is_finite());
        if kappa == 0.0 {
            prop_assert_eq!(dq, 0.0);
        } else {
            // Bounded by total emission.
            prop_assert!(dq <= 4.0 * std::f64::consts::PI * kappa * s + 1e-9);
        }
    }

    /// The simulated heap never loses bytes: live accounting matches the
    /// sum of outstanding allocations under any alloc/free interleaving.
    #[test]
    fn heap_sim_accounting(ops in proptest::collection::vec((1u64..100_000, any::<bool>()), 1..60)) {
        use uintah::mem::fragsim::{HeapSim, Policy};
        let mut sim = HeapSim::new(Policy::FirstFit);
        let mut live = Vec::new();
        let mut expect = 0u64;
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (id, sz) = live.swap_remove(0);
                sim.free(id);
                expect -= sz;
            } else {
                let id = sim.alloc(size);
                live.push((id, size));
                expect += size;
            }
            prop_assert_eq!(sim.live_bytes(), expect);
            prop_assert!(sim.footprint() >= sim.live_bytes());
        }
    }

    /// The wait-free pool behaves as a multiset under any sequential
    /// program of insert / conditional-remove operations.
    #[test]
    fn pool_is_a_multiset(ops in proptest::collection::vec((0u8..3, 0u32..8), 1..80)) {
        let pool: WaitFreePool<u32> = WaitFreePool::new();
        let mut model: Vec<u32> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    pool.insert(v);
                    model.push(v);
                }
                1 => {
                    // Remove one instance of v if present.
                    let got = pool.find_any(|&x| x == v).map(|it| pool.erase(it));
                    let model_pos = model.iter().position(|&x| x == v);
                    prop_assert_eq!(got.is_some(), model_pos.is_some());
                    if let Some(p) = model_pos {
                        model.swap_remove(p);
                    }
                }
                _ => {
                    // Drain everything equal to v.
                    let mut drained = 0;
                    pool.drain_matching(|&x| x == v, |_| drained += 1);
                    let before = model.len();
                    model.retain(|&x| x != v);
                    prop_assert_eq!(drained, before - model.len());
                }
            }
            prop_assert_eq!(pool.len(), model.len());
        }
        // Final contents match as multisets.
        let mut remaining = Vec::new();
        pool.drain_matching(|_| true, |v| remaining.push(v));
        remaining.sort_unstable();
        model.sort_unstable();
        prop_assert_eq!(remaining, model);
    }

    /// Prolongation–restriction is a projection: restricting a prolonged
    /// coarse field returns it exactly (constant prolongation).
    #[test]
    fn prolong_restrict_projection(nc in 1..4i32, rr in 2..4i32, seed in any::<u64>()) {
        use uintah_grid::prolongation::prolong_constant;
        use uintah_grid::restriction::restrict_average;
        let coarse_r = Region::cube(nc);
        let mut coarse = CcVariable::<f64>::new(coarse_r);
        let mut rng = CellRng::new(seed, IntVector::ZERO, 1, 0);
        coarse.fill_with(|_| rng.next_f64() * 10.0 - 5.0);
        let fine = prolong_constant(&coarse, IntVector::splat(rr), Region::cube(nc * rr));
        let back = restrict_average(&fine, IntVector::splat(rr), coarse_r);
        for c in coarse_r.cells() {
            prop_assert!((back[c] - coarse[c]).abs() < 1e-12);
        }
    }

    /// Tag composition is injective over the fields the runtime uses.
    #[test]
    fn tag_injective(v1 in 0u8..8, p1 in 0u32..1000, d1 in 0u32..1000, ph1 in 0u8..4,
                     v2 in 0u8..8, p2 in 0u32..1000, d2 in 0u32..1000, ph2 in 0u8..4) {
        let t1 = Tag::compose(v1, p1, d1, ph1);
        let t2 = Tag::compose(v2, p2, d2, ph2);
        prop_assert_eq!(t1 == t2, (v1, p1, d1, ph1) == (v2, p2, d2, ph2));
    }
}
