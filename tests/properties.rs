//! Property-based tests (proptest) for the core data structures and
//! invariants of the stack.

use proptest::prelude::*;
use uintah::prelude::*;
use uintah_grid::distribute::morton3;

fn small_coord() -> impl Strategy<Value = i32> {
    -20..20i32
}

proptest! {
    /// Region coarsen/refine: the coarse parent of every fine cell lies in
    /// the coarsened region, and refining covers the original.
    #[test]
    fn region_coarsen_covers(
        lox in small_coord(), loy in small_coord(), loz in small_coord(),
        ex in 1..12i32, ey in 1..12i32, ez in 1..12i32,
        rr in 2..5i32,
    ) {
        let lo = IntVector::new(lox, loy, loz);
        let region = Region::new(lo, lo + IntVector::new(ex, ey, ez));
        let rrv = IntVector::splat(rr);
        let coarse = region.coarsened(rrv);
        for c in region.cells() {
            prop_assert!(coarse.contains(c.div_floor(rrv)));
        }
        prop_assert!(coarse.refined(rrv).contains_region(&region));
    }

    /// Linear indexing is a bijection on any region.
    #[test]
    fn region_linear_index_bijective(
        lox in small_coord(), loy in small_coord(), loz in small_coord(),
        ex in 1..8i32, ey in 1..8i32, ez in 1..8i32,
    ) {
        let lo = IntVector::new(lox, loy, loz);
        let region = Region::new(lo, lo + IntVector::new(ex, ey, ez));
        for (i, c) in region.cells().enumerate() {
            prop_assert_eq!(region.linear_index(c), i);
            prop_assert_eq!(region.from_linear(i), c);
        }
    }

    /// Intersection is commutative, contained in both, and grown() is
    /// monotone.
    #[test]
    fn region_algebra(
        a in 0..10i32, b in 1..10i32, c in 0..10i32, d in 1..10i32,
        g in 0..4i32,
    ) {
        let r1 = Region::new(IntVector::splat(a), IntVector::splat(a + b));
        let r2 = Region::new(IntVector::splat(c), IntVector::splat(c + d));
        let i12 = r1.intersect(&r2);
        let i21 = r2.intersect(&r1);
        prop_assert_eq!(i12, i21);
        prop_assert!(r1.contains_region(&i12) && r2.contains_region(&i12));
        prop_assert!(r1.grown(g).contains_region(&r1));
    }

    /// Morton keys are injective on the lattice domain.
    #[test]
    fn morton_injective(ax in 0..64i32, ay in 0..64i32, az in 0..64i32,
                        bx in 0..64i32, by in 0..64i32, bz in 0..64i32) {
        let a = IntVector::new(ax, ay, az);
        let b = IntVector::new(bx, by, bz);
        prop_assert_eq!(morton3(a) == morton3(b), a == b);
    }

    /// Window pack/unpack round-trips arbitrary windows of arbitrary data.
    #[test]
    fn pack_unpack_roundtrip(
        n in 2..8i32,
        wx in 0..4i32, wy in 0..4i32, wz in 0..4i32,
        ex in 1..4i32, ey in 1..4i32, ez in 1..4i32,
        seed in any::<u32>(),
    ) {
        let region = Region::cube(n);
        let mut v = CcVariable::<f64>::new(region);
        v.fill_with(|c| (c.x * 31 + c.y * 7 + c.z) as f64 + seed as f64);
        let wlo = IntVector::new(wx, wy, wz);
        let window = Region::new(wlo, wlo + IntVector::new(ex, ey, ez)).intersect(&region);
        prop_assume!(!window.is_empty());
        let (w, buf) = v.pack_window(&window);
        let mut out = CcVariable::<f64>::new(region);
        out.unpack_window(&w, &buf);
        for c in w.cells() {
            prop_assert_eq!(out[c], v[c]);
        }
    }

    /// Restriction conserves the integral for any field.
    #[test]
    fn restriction_conserves_integral(
        rr in 2..4i32,
        nc in 1..4i32,
        seed in any::<u64>(),
    ) {
        use uintah_grid::restriction::restrict_average;
        let fine_n = nc * rr;
        let fine_r = Region::cube(fine_n);
        let mut fine = CcVariable::<f64>::new(fine_r);
        let mut rng = CellRng::new(seed, IntVector::ZERO, 0, 0);
        fine.fill_with(|_| rng.next_f64());
        let coarse = restrict_average(&fine, IntVector::splat(rr), Region::cube(nc));
        let fine_sum: f64 = fine.as_slice().iter().sum();
        let coarse_sum: f64 = coarse.as_slice().iter().sum::<f64>() * (rr * rr * rr) as f64;
        prop_assert!((fine_sum - coarse_sum).abs() <= 1e-9 * fine_sum.abs().max(1.0));
    }

    /// DDA path length equals the geometric chord for any ray through a
    /// uniform medium (κ = 1, telescoped optical depth recovers length).
    #[test]
    fn dda_chord_property(
        ox in 0.01f64..0.99, oy in 0.01f64..0.99, oz in 0.01f64..0.99,
        dx in -1.0f64..1.0, dy in -1.0f64..1.0, dz in -1.0f64..1.0,
    ) {
        let d = Vector::new(dx, dy, dz);
        prop_assume!(d.length() > 1e-3);
        let dir = d.normalized();
        let n = 16;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let origin = Point::new(ox, oy, oz);
        let sum_i = trace_ray(
            &[TraceLevel { props: &props, roi: props.region }],
            origin,
            dir,
            1e-300,
        );
        let l_measured = -(1.0 - sum_i).ln();
        let mut l_geom = f64::INFINITY;
        for a in 0..3 {
            if dir[a] > 0.0 {
                l_geom = l_geom.min((1.0 - origin[a]) / dir[a]);
            } else if dir[a] < 0.0 {
                l_geom = l_geom.min(-origin[a] / dir[a]);
            }
        }
        prop_assert!((l_measured - l_geom).abs() < 1e-8,
            "path {} vs chord {}", l_measured, l_geom);
    }

    /// divQ is always finite, and zero for transparent cells.
    #[test]
    fn div_q_finite(kappa in 0.0f64..50.0, s in 0.0f64..10.0, nrays in 1u32..32) {
        let n = 6;
        let props = LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), kappa, s);
        let dq = div_q_for_cell(
            &[TraceLevel { props: &props, roi: props.region }],
            IntVector::splat(n / 2),
            &RmcrtParams { nrays, threshold: 1e-4, seed: 1, ..Default::default() },
        );
        prop_assert!(dq.is_finite());
        if kappa == 0.0 {
            prop_assert_eq!(dq, 0.0);
        } else {
            // Bounded by total emission.
            prop_assert!(dq <= 4.0 * std::f64::consts::PI * kappa * s + 1e-9);
        }
    }

    /// The simulated heap never loses bytes: live accounting matches the
    /// sum of outstanding allocations under any alloc/free interleaving.
    #[test]
    fn heap_sim_accounting(ops in proptest::collection::vec((1u64..100_000, any::<bool>()), 1..60)) {
        use uintah::mem::fragsim::{HeapSim, Policy};
        let mut sim = HeapSim::new(Policy::FirstFit);
        let mut live = Vec::new();
        let mut expect = 0u64;
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (id, sz) = live.swap_remove(0);
                sim.free(id);
                expect -= sz;
            } else {
                let id = sim.alloc(size);
                live.push((id, size));
                expect += size;
            }
            prop_assert_eq!(sim.live_bytes(), expect);
            prop_assert!(sim.footprint() >= sim.live_bytes());
        }
    }

    /// Device sub-allocator free-list invariants hold under arbitrary
    /// alloc/free sequences: blocks never overlap, adjacent free extents
    /// coalesce, and `used == sum(live blocks)` at every step — including
    /// after failed allocations (which must not perturb the accounting).
    #[test]
    fn suballoc_free_list_invariants(
        ops in proptest::collection::vec((1u64..9_000, any::<bool>()), 1..80),
        best_fit in any::<bool>(),
        small_class in 0u64..8_192,
    ) {
        use uintah::mem::{FitPolicy, SubAllocator};
        let policy = if best_fit { FitPolicy::BestFit } else { FitPolicy::FirstFit };
        // Small enough that some sequences hit capacity/fragmentation; the
        // two-ended small-class split (0 disables) must keep every
        // invariant regardless of which end a block was carved from.
        let mut sa = SubAllocator::with_small_class(64 * 1024, 1, policy, small_class);
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut expect = 0u64;
        for (size, do_free) in ops {
            if do_free && !live.is_empty() {
                let (off, sz) = live.swap_remove(0);
                prop_assert_eq!(sa.free(off), Ok(sz));
                expect -= sz;
            } else {
                match sa.alloc(size) {
                    Ok(off) => {
                        live.push((off, size));
                        expect += size;
                    }
                    Err(_) => {
                        // A failed alloc leaves the ledger untouched.
                        prop_assert_eq!(sa.used(), expect);
                    }
                }
            }
            prop_assert_eq!(sa.used(), expect, "used == sum(live)");
            prop_assert!(sa.check_invariants().is_ok(),
                "{}", sa.check_invariants().unwrap_err());
        }
        // Tear down in the model's (arbitrary) residual order: everything
        // coalesces back to one maximal free extent.
        for (off, _) in live {
            prop_assert!(sa.free(off).is_ok());
        }
        prop_assert_eq!(sa.used(), 0);
        prop_assert_eq!(sa.free_blocks(), 1);
        prop_assert_eq!(sa.largest_free(), sa.capacity());
        prop_assert!(sa.check_invariants().is_ok());
        prop_assert_eq!(sa.stats().unknown_frees, 0);
    }

    /// Double-frees and frees of fabricated offsets are rejected and
    /// counted, never corrupting the accounting.
    #[test]
    fn suballoc_rejects_bad_frees(
        sizes in proptest::collection::vec(1u64..500, 1..12),
        bogus in any::<u64>(),
    ) {
        use uintah::mem::{FitPolicy, SubAllocator};
        let mut sa = SubAllocator::new(1 << 20, 1, FitPolicy::FirstFit);
        let offs: Vec<u64> = sizes.iter().map(|&s| sa.alloc(s).unwrap()).collect();
        let used = sa.used();
        // A bogus offset is only "valid" if it collides with a live block.
        if !offs.contains(&bogus) {
            prop_assert_eq!(sa.free(bogus), Err(()));
            prop_assert_eq!(sa.stats().unknown_frees, 1);
            prop_assert_eq!(sa.used(), used);
        }
        // Free everything once — fine; free it all again — all rejected.
        for &o in &offs {
            prop_assert!(sa.free(o).is_ok());
        }
        let unknown_before = sa.stats().unknown_frees;
        for &o in &offs {
            prop_assert_eq!(sa.free(o), Err(()));
        }
        prop_assert_eq!(sa.stats().unknown_frees, unknown_before + offs.len() as u64);
        prop_assert_eq!(sa.used(), 0);
        prop_assert!(sa.check_invariants().is_ok());
    }

    /// The wait-free pool behaves as a multiset under any sequential
    /// program of insert / conditional-remove operations.
    #[test]
    fn pool_is_a_multiset(ops in proptest::collection::vec((0u8..3, 0u32..8), 1..80)) {
        let pool: WaitFreePool<u32> = WaitFreePool::new();
        let mut model: Vec<u32> = Vec::new();
        for (op, v) in ops {
            match op {
                0 => {
                    pool.insert(v);
                    model.push(v);
                }
                1 => {
                    // Remove one instance of v if present.
                    let got = pool.find_any(|&x| x == v).map(|it| pool.erase(it));
                    let model_pos = model.iter().position(|&x| x == v);
                    prop_assert_eq!(got.is_some(), model_pos.is_some());
                    if let Some(p) = model_pos {
                        model.swap_remove(p);
                    }
                }
                _ => {
                    // Drain everything equal to v.
                    let mut drained = 0;
                    pool.drain_matching(|&x| x == v, |_| drained += 1);
                    let before = model.len();
                    model.retain(|&x| x != v);
                    prop_assert_eq!(drained, before - model.len());
                }
            }
            prop_assert_eq!(pool.len(), model.len());
        }
        // Final contents match as multisets.
        let mut remaining = Vec::new();
        pool.drain_matching(|_| true, |v| remaining.push(v));
        remaining.sort_unstable();
        model.sort_unstable();
        prop_assert_eq!(remaining, model);
    }

    /// Prolongation–restriction is a projection: restricting a prolonged
    /// coarse field returns it exactly (constant prolongation).
    #[test]
    fn prolong_restrict_projection(nc in 1..4i32, rr in 2..4i32, seed in any::<u64>()) {
        use uintah_grid::prolongation::prolong_constant;
        use uintah_grid::restriction::restrict_average;
        let coarse_r = Region::cube(nc);
        let mut coarse = CcVariable::<f64>::new(coarse_r);
        let mut rng = CellRng::new(seed, IntVector::ZERO, 1, 0);
        coarse.fill_with(|_| rng.next_f64() * 10.0 - 5.0);
        let fine = prolong_constant(&coarse, IntVector::splat(rr), Region::cube(nc * rr));
        let back = restrict_average(&fine, IntVector::splat(rr), coarse_r);
        for c in coarse_r.cells() {
            prop_assert!((back[c] - coarse[c]).abs() < 1e-12);
        }
    }

    /// Tag composition is injective over the fields the runtime uses.
    #[test]
    fn tag_injective(v1 in 0u8..8, p1 in 0u32..1000, d1 in 0u32..1000, ph1 in 0u8..4,
                     v2 in 0u8..8, p2 in 0u32..1000, d2 in 0u32..1000, ph2 in 0u8..4) {
        let t1 = Tag::compose(v1, p1, d1, ph1);
        let t2 = Tag::compose(v2, p2, d2, ph2);
        prop_assert_eq!(t1 == t2, (v1, p1, d1, ph1) == (v2, p2, d2, ph2));
    }

    /// Arbitrary refinement-flag sets map to fine regions that are
    /// ratio-aligned, pairwise disjoint, and cover exactly the flagged
    /// cells' fine footprints (out-of-level flags and duplicates ignored).
    #[test]
    fn refine_regions_aligned_disjoint_covering(
        raw in proptest::collection::vec((-2..6i32, -2..6i32, -2..6i32), 0..24),
    ) {
        let grid = BurnsChriston::small_grid(16, 4);
        let coarse = grid.level(0).cell_region();
        let rr = grid.level(1).ratio_to_coarser().as_ivec();
        let flags: Vec<IntVector> =
            raw.iter().map(|&(x, y, z)| IntVector::new(x, y, z)).collect();
        let regions = Regridder::refine_regions(&grid, 0, &flags);

        for r in &regions {
            // Aligned to the refinement ratio on both corners.
            prop_assert_eq!(r.lo().x % rr.x, 0);
            prop_assert_eq!(r.lo().y % rr.y, 0);
            prop_assert_eq!(r.lo().z % rr.z, 0);
            prop_assert_eq!(r.hi().x % rr.x, 0);
            prop_assert_eq!(r.hi().y % rr.y, 0);
            prop_assert_eq!(r.hi().z % rr.z, 0);
        }
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                prop_assert!(a.intersect(b).is_empty(), "{a:?} overlaps {b:?}");
            }
        }
        // Coverage is exact: every in-level flag's fine box lies in some
        // region, and the total volume is one fine box per unique flag.
        let mut unique: Vec<IntVector> =
            flags.iter().copied().filter(|c| coarse.contains(*c)).collect();
        unique.sort_unstable_by_key(|c| (c.z, c.y, c.x));
        unique.dedup();
        for c in &unique {
            let lo = IntVector::new(c.x * rr.x, c.y * rr.y, c.z * rr.z);
            let fine_box = Region::new(lo, lo + rr);
            prop_assert!(
                regions.iter().any(|r| r.contains_region(&fine_box)),
                "flag {c:?} not covered"
            );
        }
        let total: usize = regions.iter().map(|r| r.volume()).sum();
        prop_assert_eq!(total, unique.len() * (rr.x * rr.y * rr.z) as usize);
    }

    /// Any cost vector under any policy yields a valid distribution: every
    /// patch owned exactly once, by a rank inside the world.
    #[test]
    fn rebalance_distribution_valid(
        nranks in 1..6usize,
        policy_idx in 0u8..3,
        seed in any::<u64>(),
    ) {
        let grid = BurnsChriston::small_grid(16, 4);
        let policy = match policy_idx {
            0 => RebalancePolicy::CostedSfc,
            1 => RebalancePolicy::CostedLpt,
            _ => RebalancePolicy::Rotate(1 + (seed % 7) as usize),
        };
        let costs = PatchCosts::from_values(synth_costs(&grid, seed));
        let current = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
        let next = Regridder::new(policy).rebalance(&grid, &costs, &current);

        prop_assert_eq!(next.rank_map().len(), grid.num_patches());
        let mut owned_total = 0;
        for rank in 0..nranks {
            for &pid in next.owned_by(rank) {
                prop_assert_eq!(next.rank_of(pid), rank);
                owned_total += 1;
            }
        }
        // rank_of < nranks everywhere and the owned lists partition the
        // patch set exactly once.
        prop_assert!(next.rank_map().iter().all(|&r| (r as usize) < nranks));
        prop_assert_eq!(owned_total, grid.num_patches());
    }

    /// Both costed policies keep every rank's load within the bound they
    /// advertise: `Σ_levels (level_total / nranks + level_max)`.
    #[test]
    fn costed_rebalance_respects_advertised_bound(
        nranks in 1..6usize,
        lpt in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let grid = BurnsChriston::small_grid(16, 4);
        let policy = if lpt { RebalancePolicy::CostedLpt } else { RebalancePolicy::CostedSfc };
        let regridder = Regridder::new(policy);
        let costs = PatchCosts::from_values(synth_costs(&grid, seed));
        let current = PatchDistribution::new(&grid, nranks, DistributionPolicy::MortonSfc);
        let next = regridder.rebalance(&grid, &costs, &current);
        let bound = regridder
            .advertised_bound(&grid, &costs, nranks)
            .expect("costed policies advertise a bound");
        for rank in 0..nranks {
            let load: f64 = next.owned_by(rank).iter().map(|&p| costs.get(p)).sum();
            prop_assert!(
                load <= bound * (1.0 + 1e-12),
                "rank {rank} load {load} exceeds advertised bound {bound}"
            );
        }
    }

    /// Degenerate directions never hang or poison the packet marcher:
    /// axis-aligned rays (`d[a] == 0` on one or two axes, giving infinite
    /// `t_delta`/`side_dist` on those axes) and exact two-axis ties
    /// (diagonal directions from cell centres and corners, where both
    /// side distances carry identical bits) must terminate and produce a
    /// finite, physically bounded intensity — identical through the
    /// single-ray and the packet entry points.
    #[test]
    fn degenerate_directions_terminate_with_finite_intensity(
        axis in 0..3usize,
        other in 0..3usize,
        neg_a in any::<bool>(),
        neg_b in any::<bool>(),
        cx in 1..15i32, cy in 1..15i32, cz in 1..15i32,
        from_corner in any::<bool>(),
    ) {
        use uintah::rmcrt::packet::RayPacket;
        use uintah::rmcrt::{PacketTracer, TraceOptions, WALL_CELL};

        let n = 16;
        let mut props =
            LevelProps::uniform(Region::cube(n), Vector::splat(1.0 / n as f64), 1.0, 1.0);
        let e = props.region.extent();
        for c in props.region.cells() {
            if c.x == 0 || c.y == 0 || c.z == 0 || c.x == e.x - 1 || c.y == e.y - 1 || c.z == e.z - 1 {
                props.cell_type[c] = WALL_CELL;
                props.abskg[c] = 1.0;
                props.sigma_t4_over_pi[c] = 2.0;
            }
        }
        // Axis-aligned, or an exact two-axis diagonal: both non-zero
        // components share the same magnitude bits, so side-distance ties
        // are exact when launched from a cell centre or corner.
        let mut d = [0.0f64; 3];
        if other == axis {
            d[axis] = if neg_a { -1.0 } else { 1.0 };
        } else {
            let s = 1.0 / 2.0f64.sqrt();
            d[axis] = if neg_a { -s } else { s };
            d[other] = if neg_b { -s } else { s };
        }
        let dir = Vector::new(d[0], d[1], d[2]);
        let cell = IntVector::new(cx, cy, cz);
        let lo = props.cell_lo(cell);
        let origin = if from_corner {
            lo // exactly on the cell's low faces
        } else {
            lo + props.dx * 0.5
        };
        let stack = [TraceLevel { props: &props, roi: props.region }];
        let sum_i = trace_ray(&stack, origin, dir, 1e-9);
        prop_assert!(sum_i.is_finite(), "sumI not finite: {sum_i}");
        // Bounded by the hottest emitter in the enclosure (S_wall = 2).
        prop_assert!((0.0..=2.0 + 1e-9).contains(&sum_i), "sumI out of range: {sum_i}");

        // The packet path is the same engine: identical bits.
        let tracer = PacketTracer::new(&stack, TraceOptions { threshold: 1e-9, max_reflections: 0 });
        let mut packet = RayPacket::with_capacity(1);
        packet.push(origin, dir);
        tracer.trace(&mut packet);
        prop_assert_eq!(packet.sum_i[0].to_bits(), sum_i.to_bits());
    }
}

/// Deterministic pseudo-random per-patch costs in [0, 10), with a sprinkle
/// of exact zeros (the all-zero and mixed-zero edge cases both occur).
fn synth_costs(grid: &Grid, seed: u64) -> Vec<f64> {
    (0..grid.num_patches())
        .map(|i| {
            let x = (seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0xD134_2543_DE82_EF95);
            if x.is_multiple_of(5) {
                0.0
            } else {
                (x % 1000) as f64 / 100.0
            }
        })
        .collect()
}
