//! Mid-run regrid/rebalance tests (the ownership-migration PR):
//!
//! * flipping patch ownership between ranks mid-run must leave `divQ`
//!   bit-identical to an uninterrupted run, on 1, 2, 3 and 7 worker
//!   threads;
//! * the cached task graph must recompile exactly once per regrid — the
//!   steps in between reuse it;
//! * migration moves live warehouse data to the new owners bit-identically
//!   (checked directly at the executor level);
//! * a regrid evicts device-resident level replicas, so the first
//!   post-regrid step pays a full re-upload where a steady step paid a
//!   diff;
//! * no stale-epoch or stale-generation warehouse hit occurs anywhere.

use std::sync::Arc;
use uintah::prelude::*;
use uintah::runtime::task::{Computes, TaskContext};
use uintah::runtime::{DataWarehouse, PersistentExecutor, Scheduler, TaskDecl};
use uintah_grid::PatchId;

/// Gather the fine-level divQ field from a world result.
fn collect_divq(grid: &Grid, result: &uintah::runtime::WorldResult) -> CcVariable<f64> {
    let fine = grid.fine_level();
    let mut out = CcVariable::<f64>::new(fine.cell_region());
    for rr in &result.ranks {
        for &pid in result.dist.owned_by(rr.rank) {
            if grid.patch(pid).level_index() != grid.fine_level_index() {
                continue;
            }
            let v = rr.dw.get_patch(DIVQ, pid).expect("divQ missing");
            out.copy_window(v.as_f64(), &grid.patch(pid).interior());
        }
    }
    out
}

fn pipeline() -> RmcrtPipeline {
    RmcrtPipeline {
        params: RmcrtParams {
            nrays: 8,
            threshold: 1e-4,
            seed: 0x5EED,
            timestep: 0,
            sampling: uintah::rmcrt::sampling::RaySampling::Independent,
            ray_count: None,
        },
        halo: 2,
        problem: BurnsChriston::default(),
    }
}

/// (a) A forced ownership flip at step 2 of 3 leaves divQ bit-identical to
/// the uninterrupted run on 1, 2, 3 and 7 worker threads; the graph
/// recompiles exactly once (at the regrid) beyond the initial compile; the
/// regrid step's stats carry the migration cost; and no warehouse get ever
/// touched a stale-stamped entry.
#[test]
fn mid_run_ownership_flip_divq_bit_identical() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let decls = Arc::new(multilevel_decls(&grid, pipeline(), false));
    let timesteps = 3;
    let run = |nthreads: usize, regrid: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 2,
                nthreads,
                timesteps,
                regrid_interval: regrid.then_some(2),
                regrid_policy: RebalancePolicy::Rotate(1),
                ..Default::default()
            },
        )
    };
    let reference = run(1, false);
    let ref_divq = collect_divq(&grid, &reference);

    for nthreads in [1, 2, 3, 7] {
        let flipped = run(nthreads, true);
        assert_ne!(
            flipped.dist.rank_map(),
            reference.dist.rank_map(),
            "the rotate policy must actually change ownership"
        );
        let divq = collect_divq(&grid, &flipped);
        for c in ref_divq.region().cells() {
            assert_eq!(
                divq[c].to_bits(),
                ref_divq[c].to_bits(),
                "divQ differs at {c:?} after a regrid with {nthreads} threads"
            );
        }
        for rr in &flipped.ranks {
            assert_eq!(rr.stats.len(), timesteps);
            // Exactly one extra compile: the initial one at step 0 and the
            // post-regrid one at step 2; step 1 reuses the cache.
            assert!(
                rr.stats[0].graph_compile.as_nanos() > 0,
                "rank {}: step 0 must pay the initial compile",
                rr.rank
            );
            assert_eq!(
                rr.stats[1].graph_compile.as_nanos(),
                0,
                "rank {}: step 1 must reuse the cached graph",
                rr.rank
            );
            assert!(
                rr.stats[2].graph_compile.as_nanos() > 0,
                "rank {}: the post-regrid step must recompile",
                rr.rank
            );
            // The regrid's cost is folded into the step that runs under
            // the new distribution — and only that step.
            assert_eq!(rr.stats[0].regrids, 0);
            assert_eq!(rr.stats[1].regrids, 0);
            assert_eq!(rr.stats[2].regrids, 1, "rank {}", rr.rank);
            assert!(
                rr.stats[2].migrated_bytes > 0,
                "rank {}: the flip must move warehouse data",
                rr.rank
            );
            assert!(rr.stats[2].migrate_wall.as_nanos() > 0);
            assert_eq!(rr.stats[2].regrid_compile, rr.stats[2].graph_compile);
            let line = rr.stats[2].summary();
            assert!(
                line.contains("regrids 1"),
                "summary missing the regrid line:\n{line}"
            );
            assert_eq!(
                rr.dw.stale_hits(),
                0,
                "rank {}: a stale-stamped entry was touched",
                rr.rank
            );
        }
    }
}

/// (b) Executor-level migration correctness: after `regrid`, the new owner
/// holds the producer's exact bits for every gained patch, before any task
/// of the next step runs.
#[test]
fn regrid_migrates_live_patch_data_to_new_owners() {
    const SRC: VarLabel = VarLabel::new("rg_src", 50);
    let grid = Arc::new(
        Grid::builder()
            .fine_cells(IntVector::splat(16))
            .num_levels(1)
            .fine_patch_size(IntVector::splat(8))
            .build(),
    );
    let produce = TaskDecl::new(
        "produce",
        0,
        Arc::new(|ctx: &mut TaskContext| {
            let pid = ctx.patch().id().0;
            let mut v = CcVariable::<f64>::new(ctx.patch().interior());
            v.fill_with(|c| (pid * 1000) as f64 + (c.x + 10 * c.y + 100 * c.z) as f64);
            ctx.put(SRC, FieldData::F64(v));
        }),
    )
    .computes(Computes::PatchVar(SRC));
    let decls = Arc::new(vec![produce]);

    let dist = Arc::new(PatchDistribution::new(&grid, 2, DistributionPolicy::MortonSfc));
    let rotated = Arc::new(PatchDistribution::from_rank_of(
        2,
        dist.rank_map().iter().map(|&r| (r + 1) % 2).collect(),
    ));
    let world = CommWorld::new(2);
    let mut handles = Vec::new();
    for rank in 0..2usize {
        let world = world.clone();
        let grid = Arc::clone(&grid);
        let decls = Arc::clone(&decls);
        let (dist, rotated) = (Arc::clone(&dist), Arc::clone(&rotated));
        handles.push(std::thread::spawn(move || {
            let comm = world.communicator(rank);
            let dw = Arc::new(DataWarehouse::new(Arc::clone(&grid)));
            let sched = Scheduler::new(comm, 1, StoreKind::WaitFree);
            let mut exec = PersistentExecutor::new(
                Arc::clone(&grid),
                decls,
                Arc::clone(&dist),
                sched,
                Arc::clone(&dw),
                None,
                false,
            );
            exec.step();
            assert_eq!(exec.compiles(), 1);

            // Regridding to the identical distribution is a no-op.
            assert!(exec.regrid(Arc::clone(&dist)).is_none());
            assert_eq!(exec.compiles(), 1);

            let ev = exec.regrid(Arc::clone(&rotated)).expect("ownership changed");
            assert_eq!(ev.generation, 1);
            assert_eq!(ev.patches_out, dist.owned_by(rank).len());
            assert_eq!(ev.patches_in, rotated.owned_by(rank).len());
            assert!(ev.migrated_bytes > 0);

            // Every gained patch carries the producer's exact bits, visible
            // before the next step runs any task.
            for &pid in rotated.owned_by(rank) {
                let v = exec.dw().get_patch(SRC, pid).expect("migrated SRC");
                for c in grid.patch(pid).interior().cells() {
                    let expect = (pid.0 * 1000) as f64 + (c.x + 10 * c.y + 100 * c.z) as f64;
                    assert_eq!(v.as_f64()[c].to_bits(), expect.to_bits(), "patch {pid:?} cell {c:?}");
                }
            }
            // And lost patches are gone.
            for &pid in dist.owned_by(rank) {
                assert!(exec.dw().get_patch(SRC, pid).is_none(), "patch {pid:?} not handed off");
            }

            // The next step runs under the new ownership, recompiling once
            // and folding the regrid cost into its stats.
            let s = exec.step();
            assert_eq!(exec.compiles(), 2, "exactly one extra compile");
            assert_eq!(s.regrids, 1);
            assert_eq!(s.migrated_bytes, ev.migrated_bytes);
            assert_eq!(exec.dist().rank_map(), rotated.rank_map());
            assert_eq!(dw.stale_hits(), 0);
            assert_eq!(dw.generation(), 1);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// (c) A regrid evicts device-resident level replicas: the first
/// post-regrid step pays a full re-upload where the steady step before it
/// paid only a diff — and the GPU answer still matches the CPU answer
/// bit for bit through the flip.
#[test]
fn gpu_regrid_evicts_level_replicas_and_stays_bit_identical() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let timesteps = 3;
    let run = |gpu: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::new(multilevel_decls(&grid, pipeline(), gpu)),
            WorldConfig {
                nranks: 2,
                nthreads: 2,
                timesteps,
                gpu_capacity: gpu.then_some(2 << 30),
                regrid_interval: Some(2),
                regrid_policy: RebalancePolicy::Rotate(1),
                ..Default::default()
            },
        )
    };
    let gpu_run = run(true);
    let cpu_run = run(false);

    for rr in &gpu_run.ranks {
        assert!(
            rr.stats[1].gpu_h2d_bytes < rr.stats[0].gpu_h2d_bytes,
            "rank {}: steady step must re-upload less than the cold step",
            rr.rank
        );
        assert!(
            rr.stats[2].gpu_h2d_bytes > rr.stats[1].gpu_h2d_bytes,
            "rank {}: post-regrid step uploaded {} B, not more than the steady \
             step's {} B — level replicas were not evicted",
            rr.rank,
            rr.stats[2].gpu_h2d_bytes,
            rr.stats[1].gpu_h2d_bytes
        );
        assert_eq!(rr.stats[2].regrids, 1);
        assert_eq!(rr.dw.stale_hits(), 0, "rank {}", rr.rank);
    }

    let a = collect_divq(&grid, &gpu_run);
    let b = collect_divq(&grid, &cpu_run);
    for c in a.region().cells() {
        assert_eq!(a[c].to_bits(), b[c].to_bits(), "cell {c:?}");
    }
}

/// (d) Measured-cost rebalancing end to end: the costed-SFC policy driven
/// by real per-step timings still produces a valid, agreed distribution
/// and bit-identical physics (the decision may differ run to run — the
/// timings are noisy — but whatever it decides must be correct).
#[test]
fn costed_rebalance_midrun_keeps_divq_bit_identical() {
    let grid = Arc::new(BurnsChriston::small_grid(16, 4));
    let decls = Arc::new(multilevel_decls(&grid, pipeline(), false));
    let run = |regrid: bool| {
        run_world(
            Arc::clone(&grid),
            Arc::clone(&decls),
            WorldConfig {
                nranks: 3,
                nthreads: 2,
                timesteps: 4,
                regrid_interval: regrid.then_some(2),
                regrid_policy: RebalancePolicy::CostedSfc,
                ..Default::default()
            },
        )
    };
    let balanced = run(true);
    let reference = run(false);

    // Whatever the measured costs decided, the final distribution is valid
    // (every patch owned exactly once by a rank < nranks) and identical
    // across ranks.
    let map = balanced.dist.rank_map();
    assert_eq!(map.len(), grid.num_patches());
    assert!(map.iter().all(|&r| (r as usize) < 3));
    for rr in &balanced.ranks {
        assert_eq!(rr.dist.rank_map(), map, "rank {} disagrees on ownership", rr.rank);
        assert_eq!(rr.dw.stale_hits(), 0);
    }
    for pid in 0..grid.num_patches() {
        let owner = balanced.dist.rank_of(PatchId(pid as u32));
        assert!(balanced.dist.owned_by(owner).contains(&PatchId(pid as u32)));
    }

    let a = collect_divq(&grid, &balanced);
    let b = collect_divq(&grid, &reference);
    for c in a.region().cells() {
        assert_eq!(a[c].to_bits(), b[c].to_bits(), "cell {c:?}");
    }
}
