#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --doc -q
cargo clippy --workspace --all-targets -- -D warnings
