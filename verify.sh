#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# The regrid suite is the acceptance gate for mid-run redistribution
# (bit-identical divQ across a forced ownership flip); run it by name so
# a filtered `cargo test -q` invocation can never silently skip it.
cargo test -q -p uintah --test regrid
# Multi-device gates: the fleet bit-identity matrix (divQ unchanged for
# 1/2/4/6 devices per rank under any thread count / affinity policy) and
# the fleet-vs-regrid race (per-device eviction, no stale replicas, no
# leaked device bytes) — likewise pinned by name.
cargo test -q -p uintah --test exec_spaces divq_is_bit_identical_across_fleet_sizes_and_thread_counts
cargo test -q -p uintah --test concurrency fleet_regrid_race_evicts_only_affected_devices_without_leaks
# The measured-calibration pipeline (snapshot round trip bit-identity,
# run-to-run structural determinism) — pinned by name.
cargo test -q -p uintah --test calibration
cargo test --doc -q
cargo clippy --workspace --all-targets -- -D warnings
# E12 scaling-campaign regression gate: calibrate from a real executor
# run, sweep the LARGE 16³-patch curve, compare Eq.-3 efficiencies against
# the checked-in BENCH_scaling.json (tolerance in rmcrt_bench::campaign)
# and enforce the paper-shape floors (eff 16→2048 ≥ 0.90, knee > 8192).
# Regenerate after intentional model changes with:
#   cargo run --release -p rmcrt-bench --bin scaling_gate -- --update
cargo run --release -q -p rmcrt-bench --bin scaling_gate
