#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# The regrid suite is the acceptance gate for mid-run redistribution
# (bit-identical divQ across a forced ownership flip); run it by name so
# a filtered `cargo test -q` invocation can never silently skip it.
cargo test -q -p uintah --test regrid
# Multi-device gates: the fleet bit-identity matrix (divQ unchanged for
# 1/2/4/6 devices per rank under any thread count / affinity policy) and
# the fleet-vs-regrid race (per-device eviction, no stale replicas, no
# leaked device bytes) — likewise pinned by name.
cargo test -q -p uintah --test exec_spaces divq_is_bit_identical_across_fleet_sizes_and_thread_counts
cargo test -q -p uintah --test concurrency fleet_regrid_race_evicts_only_affected_devices_without_leaks
# Oversubscription pins: the LRU-eviction-vs-regrid race (no stale
# serves, counters reconcile bit-exactly, no leaked device bytes), the
# sub-allocator free-list invariant proptests, and the D2H
# mode-independence pin (inline fallback and async engine produce equal
# DeviceCounters) — by name, so they can never be silently filtered out.
cargo test -q -p uintah --test concurrency lru_eviction_racing_regrid_no_stale_serves_no_leaks
cargo test -q -p uintah --test properties suballoc
cargo test -q -p uintah-gpu --lib inline_take_matches_async_counters_exactly
# The measured-calibration pipeline (snapshot round trip bit-identity,
# run-to-run structural determinism) — pinned by name.
cargo test -q -p uintah --test calibration
# Packet ray-engine bit-identity pins: every tracer (region solve, both
# sampling modes, scattering, wall flux, radiometer) must reproduce the
# pre-packet scalar results bit for bit in fixed mode, and adaptive mode
# must match the fixed answer within tolerance — pinned by name.
cargo test -q -p uintah --test ray_engine
cargo test --doc -q
cargo clippy --workspace --all-targets -- -D warnings
# E12 scaling-campaign regression gate: calibrate from a real executor
# run, sweep the LARGE 16³-patch curve, compare Eq.-3 efficiencies against
# the checked-in BENCH_scaling.json (tolerance in rmcrt_bench::campaign)
# and enforce the paper-shape floors (eff 16→2048 ≥ 0.90, knee > 8192).
# Regenerate after intentional model changes with:
#   cargo run --release -p rmcrt-bench --bin scaling_gate -- --update
cargo run --release -q -p rmcrt-bench --bin scaling_gate
# Packet ray-march regression gate: scalar-vs-packet bit-identity on two
# workloads, fixed-mode speedup floor, adaptive packet path >= 2x the
# scalar baseline at matched region-mean divQ, and no >10% throughput
# regression vs the checked-in BENCH_ray_march.json. Regenerate after
# intentional engine changes with:
#   cargo run --release -p rmcrt-bench --bin ray_march_gate -- --update
cargo run --release -q -p rmcrt-bench --bin ray_march_gate
# E14 device-memory oversubscription gate: a problem 2x larger than
# per-device capacity (capacity = measured reference peak / 2) completes
# on 1- and 6-device fleets with a regrid raced mid-run, divQ
# bit-identical to the non-evicting reference, evictions > 0, slowdown
# <= 8x, and zero meter drift at exit (allocator invariants, used ==
# DB-resident, no stranded spill, DBs clear to 0 B). Regenerate the
# bookkeeping JSON after intentional changes with:
#   cargo run --release -p rmcrt-bench --bin oversub_gate -- --update
cargo run --release -q -p rmcrt-bench --bin oversub_gate
# E16 async H2D upload-pipeline gate: the pipeline's upload pattern
# (step-close posts of level revalidations, superseding patch uploads
# and spill re-uploads consumed at the next step open) must take >= 10x
# less critical-path stall with the engine on than the synchronous
# fallback, hide >= 1/8 of the sync stall as measured overlap (exactly
# zero overlap in sync mode), serve bit-identical bytes in both modes,
# and keep divQ bit-identical across 1/2/3/7 threads x 1/2/4/6 devices
# x both gpu_async_h2d modes plus an oversubscribed regrid-raced pair,
# with zero meter drift after every drain. Regenerate the bookkeeping
# JSON after intentional changes with:
#   cargo run --release -p rmcrt-bench --bin h2d_overlap_gate -- --update
cargo run --release -q -p rmcrt-bench --bin h2d_overlap_gate
# H2D mode-independence and prefetch-race pins: the inline-upload
# counter-parity test, the prefetch-vs-regrid-vs-eviction race, and the
# warm-slot replica-inheritance bit-identity test — by name, so a
# filtered run can never silently skip them.
cargo test -q -p uintah-gpu --lib inline_upload_matches_async_counters_exactly
cargo test -q -p uintah --test concurrency h2d_prefetch_racing_regrid_and_eviction_drains_clean
cargo test -q -p uintah --test serve warm_slot_with_h2d_prefetch_inherits_replicas_bit_identical
# Multi-tenant serving pins: the radiation-server battery (concurrent and
# mixed-config tenants bit-identical to solo runs, attributable summary
# lines, queued-not-failed admission with typed rejection, priority
# overtaking, wire round trip + disconnect cancellation) and the
# submit/cancel storm that must drain the server to zero device bytes
# with clean allocators — pinned by name.
cargo test -q -p uintah --test serve
cargo test -q -p uintah --test concurrency radiation_server_submit_cancel_storm_drains_clean
# E15 serving gate: a mixed 4-tenant stream on a warm server must beat
# the cold one-world-per-job serial workflow (floor 0.75 x min(tenants,
# cores), i.e. the 3x service floor at >= 4 cores, never below 1x), with
# per-tenant divQ bit-identity, a deterministic shared-graph adoption,
# queued-not-failed admission on a tiny fleet, and zero meter drift after
# every drain. Regenerate the bookkeeping JSON after intentional changes:
#   cargo run --release -p rmcrt-bench --bin serve_gate -- --update
cargo run --release -q -p rmcrt-bench --bin serve_gate
