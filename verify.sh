#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run before every commit.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
# The regrid suite is the acceptance gate for mid-run redistribution
# (bit-identical divQ across a forced ownership flip); run it by name so
# a filtered `cargo test -q` invocation can never silently skip it.
cargo test -q -p uintah --test regrid
cargo test --doc -q
cargo clippy --workspace --all-targets -- -D warnings
