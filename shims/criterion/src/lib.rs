//! Minimal `criterion`-compatible benchmark harness.
//!
//! Provides the group/bench/iter API surface the workspace benches use,
//! measures median wall time per iteration, prints a compact report, and
//! writes one machine-readable snapshot per group:
//! `BENCH_<group>.json`, placed in `$BENCH_SNAPSHOT_DIR` if set, else in
//! `target/criterion-snapshots/` under the current directory.

use std::fmt::Display;
use std::fmt::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Number of timed samples per benchmark unless overridden by
/// [`BenchmarkGroup::sample_size`].
const DEFAULT_SAMPLES: usize = 30;

/// Throughput annotation for a benchmark (units processed per iteration).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        let mut id = function.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs closures under timing; handed to bench bodies.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    median_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = times[times.len() / 2];
    }

    /// Timed sampling with a caller-supplied measurement, mirroring real
    /// criterion's `iter_custom`: the routine runs `iters` iterations of
    /// the workload and returns the `Duration` it wants attributed to them
    /// (e.g. only the portion of the work on the critical path). The
    /// reported figure is the median per-iteration value across samples.
    pub fn iter_custom<F: FnMut(u64) -> std::time::Duration>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine(1));
        }
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            times.push(routine(1).as_nanos() as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = times[times.len() / 2];
    }
}

struct BenchResult {
    id: String,
    median_ns: f64,
    throughput_per_sec: Option<f64>,
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    results: Vec<BenchResult>,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut b);
        self.record(id.id, b.median_ns);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: f64::NAN,
        };
        f(&mut b, input);
        self.record(id.id, b.median_ns);
        self
    }

    fn record(&mut self, id: String, median_ns: f64) {
        let throughput_per_sec = self.throughput.map(|t| {
            let units = match t {
                Throughput::Elements(n) | Throughput::Bytes(n) => n as f64,
            };
            units / (median_ns / 1e9)
        });
        let line = match throughput_per_sec {
            Some(rate) => format!(
                "{}/{:<40} {:>14.1} ns/iter {:>14.3e} units/s",
                self.name, id, median_ns, rate
            ),
            None => format!("{}/{:<40} {:>14.1} ns/iter", self.name, id, median_ns),
        };
        println!("{line}");
        self.results.push(BenchResult {
            id,
            median_ns,
            throughput_per_sec,
        });
    }

    /// Print nothing further; persist the group snapshot as JSON.
    pub fn finish(self) {
        let dir = std::env::var("BENCH_SNAPSHOT_DIR")
            .unwrap_or_else(|_| "target/criterion-snapshots".to_string());
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut json = String::new();
        let _ = write!(json, "{{\n  \"group\": \"{}\",\n  \"benchmarks\": [", self.name);
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(
                json,
                "\n    {{ \"id\": \"{}\", \"median_ns\": {:.1}",
                r.id, r.median_ns
            );
            if let Some(rate) = r.throughput_per_sec {
                let _ = write!(json, ", \"throughput_per_sec\": {rate:.1}");
            }
            json.push_str(" }");
        }
        json.push_str("\n  ]\n}\n");
        let path = format!("{}/BENCH_{}.json", dir, self.name);
        let _ = std::fs::write(path, json);
    }
}

/// Top-level benchmark driver; one per process, shared across groups.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("== bench group: {name}");
        BenchmarkGroup {
            name,
            sample_size: DEFAULT_SAMPLES,
            throughput: None,
            results: Vec::new(),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 42), &42u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        assert_eq!(g.results.len(), 2);
        assert!(g.results.iter().all(|r| r.median_ns >= 0.0));
        assert!(g.results[0].throughput_per_sec.unwrap() > 0.0);
    }

    #[test]
    fn iter_custom_records_caller_supplied_duration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest_custom");
        g.sample_size(5);
        g.bench_function("fixed", |b| {
            b.iter_custom(|iters| std::time::Duration::from_micros(3 * iters))
        });
        assert_eq!(g.results.len(), 1);
        assert!((g.results[0].median_ns - 3_000.0).abs() < 1.0);
    }
}
