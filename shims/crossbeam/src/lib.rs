//! Minimal `crossbeam`-compatible queue. Upstream's `SegQueue` is a
//! lock-free segmented queue; in-process ranks on this build use a mutexed
//! `VecDeque`, which preserves the unbounded-MPSC semantics the scheduler
//! relies on (the scheduler's own contention structure — wait-free request
//! pool, parked workers — lives in the workspace crates, not here).

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded concurrent FIFO queue.
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let q = SegQueue::new();
            q.push(1);
            q.push(2);
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
            assert_eq!(q.pop(), None);
        }

        #[test]
        fn concurrent_producers_drain_fully() {
            let q = SegQueue::new();
            std::thread::scope(|s| {
                for t in 0..4 {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..100 {
                            q.push(t * 1000 + i);
                        }
                    });
                }
            });
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            assert_eq!(n, 400);
        }
    }
}
