//! Minimal `bytes`-compatible buffer types: an immutable, cheaply-cloneable
//! [`Bytes`] and a growable [`BytesMut`] with the little-endian `put_*`
//! writers the codec uses (exposed through the [`BufMut`] trait, as
//! upstream does).

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Cloning is O(1).
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    #[inline]
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    #[inline]
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes(Repr::Static(data))
    }

    #[inline]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

/// A growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Default, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    #[inline]
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian append-only writers, as the upstream `BufMut` provides
/// (only the unchecked-growth subset the workspace uses).
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i32_le(&mut self, v: i32);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_i32_le(&mut self, v: i32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_writers() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xdeadbeef);
        b.put_i32_le(-5);
        b.put_f64_le(1.5);
        b.put_slice(&[1, 2, 3]);
        let frozen = b.freeze();
        assert_eq!(frozen[0], 7);
        assert_eq!(u16::from_le_bytes([frozen[1], frozen[2]]), 0x1234);
        assert_eq!(frozen.len(), 1 + 2 + 4 + 4 + 8 + 3);
    }

    #[test]
    fn bytes_clone_is_shallow_and_equal() {
        let b = Bytes::copy_from_slice(&[9, 8, 7]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(&c[..], &[9, 8, 7]);
        let s = Bytes::from_static(b"abc");
        assert_eq!(&s[..], b"abc");
        assert_eq!(s.to_vec(), b"abc".to_vec());
    }
}
