//! Minimal `proptest`-compatible property-testing harness.
//!
//! The `proptest!` macro expands each property into a plain `#[test]` that
//! draws [`CASES`] deterministic pseudo-random inputs from the declared
//! strategies (seeded per test name, so failures reproduce exactly) and runs
//! the body on each. `prop_assert*` map onto the std assertion macros and
//! `prop_assume!` discards the case. This keeps the semantics the workspace
//! properties rely on — broad randomized input coverage with deterministic
//! replay — without upstream's shrinking machinery.

/// Number of input cases drawn per property.
pub const CASES: usize = 64;

pub mod test_runner {
    /// xorshift64* generator; deterministic per-test seeding.
    pub struct Rng(u64);

    impl Rng {
        pub fn seeded(seed: u64) -> Self {
            Rng(seed | 1)
        }

        /// Seed derived from the property name (FNV-1a) so each test draws
        /// a stable, independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::seeded(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A source of random values of an associated type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut Rng) -> Self::Value;
    }

    /// Types samplable uniformly from a half-open range.
    pub trait RangeSample: Copy {
        fn sample_in(lo: Self, hi: Self, rng: &mut Rng) -> Self;
    }

    macro_rules! int_range_sample {
        ($($t:ty => $wide:ty),+ $(,)?) => {$(
            impl RangeSample for $t {
                fn sample_in(lo: Self, hi: Self, rng: &mut Rng) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    (lo as $wide).wrapping_add((rng.next_u64() % span) as $wide) as $t
                }
            }
        )+};
    }

    int_range_sample!(i32 => i64, i64 => i64, u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64);

    impl RangeSample for f64 {
        fn sample_in(lo: Self, hi: Self, rng: &mut Rng) -> Self {
            assert!(lo < hi, "empty strategy range");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    impl<T: RangeSample> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::sample_in(self.start, self.end, rng)
        }
    }

    /// Types with a whole-domain default strategy ([`any`]).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+ $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )+};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

pub mod collection {
    use super::strategy::{RangeSample, Strategy};
    use super::test_runner::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: length drawn from `len`, elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Self::Value {
            let n = usize::sample_in(self.len.start, self.len.end, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::Rng::for_test(stringify!($name));
                for __case in 0..$crate::CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)+) => { assert!($($tt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)+) => { assert_eq!($($tt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)+) => { assert_ne!($($tt)+) };
}

/// Discard the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges respect their bounds, assumptions discard, and tuples and
        /// vec strategies compose.
        #[test]
        fn shim_selftest(
            a in -20..20i32,
            b in 1u32..8,
            f in 0.25f64..0.75,
            flag in any::<bool>(),
            pair in (0u8..3, 10u64..20),
            v in crate::collection::vec(0u32..5, 1..6),
        ) {
            prop_assert!((-20..20).contains(&a));
            prop_assert!((1..8).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            let _ = flag;
            prop_assert!(pair.0 < 3 && (10..20).contains(&pair.1));
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assume!(a != 0);
            prop_assert_ne!(a, 0);
        }
    }

    #[test]
    fn determinism() {
        let mut r1 = crate::test_runner::Rng::for_test("x");
        let mut r2 = crate::test_runner::Rng::for_test("x");
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
