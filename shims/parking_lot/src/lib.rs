//! Minimal `parking_lot`-compatible synchronization primitives backed by
//! `std::sync`. No poisoning: a panicked holder's poison flag is cleared on
//! the next acquisition, matching parking_lot's behaviour of not poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard for [`Mutex`]. Holds the inner std guard in an `Option` so that
/// [`Condvar::wait`] can move it out and back while keeping `&mut` access.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard moved during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard moved during condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    #[inline]
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s in place.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    #[inline]
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard moved during condvar wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard moved during condvar wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cvar.wait(&mut started);
            }
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn no_poison_on_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }
}
